"""Golden regression: the reduced grid must reproduce its snapshot.

A failure means a code change shifted the reproduced Figure-5/6 numbers.
If the shift is intentional, regenerate with
``PYTHONPATH=src python tests/golden/regen.py`` and review the diff.
"""

import json
import math

import pytest

from repro.cluster.experiment import clear_cluster_cache
from repro.harness import cache
from repro.harness.experiment import clear_tail_cache
from repro.harness.measure import clear_cache
from repro.uarch import fastpath
from tests.golden import (
    CLUSTER_GOLDEN_PATH,
    GOLDEN_PATH,
    build_cluster_payload,
    build_payload,
    load_cluster_golden,
    load_golden,
)

#: Values are deterministic on one platform; the tolerance only absorbs
#: cross-platform/numpy floating-point wiggle, not modelling changes.
REL_TOL = 1e-6
ABS_TOL = 1e-9

_REGEN_HINT = (
    "golden grid mismatch — if this change is intentional, regenerate via "
    "`PYTHONPATH=src python tests/golden/regen.py` and review the diff"
)


def compare_cells(actual: list[dict], golden: list[dict]) -> list[str]:
    """Tolerance-aware comparison; returns human-readable mismatches."""
    problems = []
    if len(actual) != len(golden):
        return [f"cell count {len(actual)} != golden {len(golden)}"]
    for i, (a, g) in enumerate(zip(actual, golden)):
        if set(a) != set(g):
            problems.append(f"cell {i}: field set changed: {set(a) ^ set(g)}")
            continue
        for field, want in g.items():
            got = a[field]
            if isinstance(want, float):
                if not math.isclose(
                    got, want, rel_tol=REL_TOL, abs_tol=ABS_TOL
                ):
                    problems.append(
                        f"cell {i} ({g['design_name']}/{g['workload_name']}"
                        f"@{g['load']}) field {field}: {got!r} != {want!r}"
                    )
            elif got != want:
                problems.append(f"cell {i} field {field}: {got!r} != {want!r}")
    return problems


@pytest.fixture(scope="module")
def payload():
    # Golden numbers must come from this revision's simulators, not from
    # a warm cache written by another revision.
    clear_cache()
    clear_tail_cache()
    return build_payload()


def test_golden_file_exists():
    assert GOLDEN_PATH.exists(), (
        "missing golden snapshot; generate it with "
        "`PYTHONPATH=src python tests/golden/regen.py`"
    )


def test_golden_config_unchanged(payload):
    golden = load_golden()
    for key in ("schema", "fidelity", "designs", "workloads", "loads"):
        assert payload[key] == golden[key], f"golden {key} drifted"


def test_golden_cells_match(payload):
    problems = compare_cells(payload["cells"], load_golden()["cells"])
    assert not problems, _REGEN_HINT + "\n" + "\n".join(problems[:20])


@pytest.mark.skipif(
    not fastpath.is_available(), reason="no C compiler for the fastpath kernel"
)
def test_golden_payload_byte_identical_across_fastpath_modes():
    """The compiled fast path is byte-transparent end to end: the full
    golden grid payload serializes identically with REPRO_FASTPATH on
    and off (which is also why the cache SCHEMA_VERSION does not bump
    for the fastpath)."""
    previous = cache.current_config()
    try:
        cache.configure(enabled=False)  # force real computation both legs
        fastpath.set_mode("off")
        clear_cache()
        clear_tail_cache()
        plain = json.dumps(build_payload(), sort_keys=True)
        fastpath.set_mode("on")
        clear_cache()
        clear_tail_cache()
        compiled = json.dumps(build_payload(), sort_keys=True)
    finally:
        fastpath.set_mode(None)
        clear_cache()
        clear_tail_cache()
        cache.configure(**previous)
    assert compiled == plain


def test_comparator_catches_shifts():
    golden = load_golden()
    mutated = [dict(c) for c in golden["cells"]]
    mutated[0]["tail_99_us"] *= 1.001  # well outside tolerance
    assert compare_cells(mutated, golden["cells"])


def test_comparator_tolerates_fp_wiggle():
    golden = load_golden()
    wiggled = [
        {
            k: (v * (1 + 1e-9) if isinstance(v, float) else v)
            for k, v in c.items()
        }
        for c in golden["cells"]
    ]
    assert not compare_cells(wiggled, golden["cells"])


# ----------------------------------------------------------------------
# Cluster golden (same comparator, same regen script)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster_payload():
    clear_cache()
    clear_tail_cache()
    clear_cluster_cache()
    return build_cluster_payload()


def test_cluster_golden_file_exists():
    assert CLUSTER_GOLDEN_PATH.exists(), (
        "missing cluster golden snapshot; generate it with "
        "`PYTHONPATH=src python tests/golden/regen.py`"
    )


def test_cluster_golden_config_unchanged(cluster_payload):
    golden = load_cluster_golden()
    for key in ("schema", "fidelity", "load", "configs"):
        assert cluster_payload[key] == golden[key], f"cluster golden {key} drifted"


def test_cluster_golden_cells_match(cluster_payload):
    problems = compare_cells(
        cluster_payload["cells"], load_cluster_golden()["cells"]
    )
    assert not problems, _REGEN_HINT + "\n" + "\n".join(problems[:20])


def test_cluster_golden_byte_identical_with_tailobs_enabled():
    """Tail telemetry is result-transparent: the cluster golden payload
    serializes identically with per-request capture on (its reservoir
    RNG is private, so no simulation stream shifts)."""
    from repro.cluster import tailobs

    previous = cache.current_config()
    try:
        cache.configure(enabled=False)
        clear_cache()
        clear_tail_cache()
        clear_cluster_cache()
        tailobs.reset()
        plain = json.dumps(build_cluster_payload(), sort_keys=True)
        clear_cache()
        clear_tail_cache()
        clear_cluster_cache()
        tailobs.enable()
        traced = json.dumps(build_cluster_payload(), sort_keys=True)
        captured = len(tailobs.snapshot().runs)
    finally:
        tailobs.reset()
        clear_cache()
        clear_tail_cache()
        clear_cluster_cache()
        cache.configure(**previous)
    assert captured > 0  # telemetry actually ran on the second leg
    assert traced == plain


@pytest.mark.skipif(
    not fastpath.is_available(), reason="no C compiler for the fastpath kernel"
)
def test_cluster_golden_byte_identical_across_fastpath_modes():
    """The epoch-Lindley kernel is byte-transparent for the cluster
    payload too (vectorized servers compiled vs scalar)."""
    previous = cache.current_config()
    try:
        cache.configure(enabled=False)
        fastpath.set_mode("off")
        clear_cache()
        clear_tail_cache()
        clear_cluster_cache()
        plain = json.dumps(build_cluster_payload(), sort_keys=True)
        fastpath.set_mode("on")
        clear_cache()
        clear_tail_cache()
        clear_cluster_cache()
        compiled = json.dumps(build_cluster_payload(), sort_keys=True)
    finally:
        fastpath.set_mode(None)
        clear_cache()
        clear_tail_cache()
        clear_cluster_cache()
        cache.configure(**previous)
    assert compiled == plain
