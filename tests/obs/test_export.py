"""Trace reading and Prometheus-style rendering."""

import json

import pytest

from repro import obs
from repro.obs import export


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def _write_trace(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


SAMPLE = [
    {"type": "manifest", "schema": 1, "target": "fig5d",
     "package": {"name": "repro", "version": "1.0.0"},
     "fidelity": {"name": "fast"}, "cache_schema_version": 2},
    {"type": "span", "name": "cell", "id": 1, "parent": None,
     "ts": 0.0, "dur_s": 0.5, "attrs": {}},
    {"type": "span", "name": "cell", "id": 2, "parent": None,
     "ts": 0.0, "dur_s": 0.25, "attrs": {}},
    {"type": "event", "name": "violation", "ts": 0.0, "span": 1,
     "attrs": {}},
    {"type": "counters", "counters": {"engine.cycles": 12.0},
     "gauges": {"queue.depth": 2.5}},
]


def test_read_trace_skips_malformed_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    body = "".join(json.dumps(r) + "\n" for r in SAMPLE)
    path.write_text(body + '{"type": "span", "trunca')  # torn final line
    assert len(export.read_trace(path)) == len(SAMPLE)


def test_summarize_records():
    summary = export.summarize_records(SAMPLE)
    assert summary.counters == {"engine.cycles": 12.0}
    assert summary.gauges == {"queue.depth": 2.5}
    assert summary.span_aggregates["cell"].count == 2
    assert summary.span_aggregates["cell"].total_s == pytest.approx(0.75)
    assert summary.event_counts == {"violation": 1}
    assert summary.manifest["target"] == "fig5d"
    assert summary.num_records == len(SAMPLE)


def test_render_prometheus():
    text = export.render_prometheus(export.summarize_records(SAMPLE))
    assert "# TYPE repro_engine_cycles_total counter" in text
    assert "repro_engine_cycles_total 12" in text
    assert "repro_queue_depth 2.5" in text
    assert 'repro_span_count{name="cell"} 2' in text
    assert 'repro_span_seconds_total{name="cell"} 0.750000' in text
    assert 'repro_event_count{name="violation"} 1' in text


def test_render_prometheus_empty():
    assert "no metrics" in export.render_prometheus(export.TraceSummary())


def test_render_report(tmp_path):
    path = tmp_path / "t.jsonl"
    _write_trace(path, SAMPLE)
    report = export.render_report(path)
    assert f"# trace: {path} ({len(SAMPLE)} records)" in report
    assert "target=fig5d fidelity=fast version=1.0.0 schema=2" in report
    assert "repro_engine_cycles_total 12" in report


def test_summarize_live_matches_in_memory_state():
    obs.enable()
    with obs.span("cell"):
        obs.add("engine.cycles", 4)
        obs.event("violation")
    summary = export.summarize_live()
    assert summary.counters == {"engine.cycles": 4.0}
    assert summary.span_aggregates["cell"].count == 1
    assert summary.event_counts == {"violation": 1}
