"""Core observation semantics: spans, counters, deltas, trace stream."""

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


class TestDisabledByDefault:
    def test_off_by_default(self):
        assert not obs.is_enabled()

    def test_span_returns_shared_noop(self):
        a = obs.span("grid")
        b = obs.span("cell", load=0.5)
        assert a is b  # one shared singleton: zero allocation per call
        with a as sp:
            sp.set("key", 1)  # no-op, no error

    def test_counters_events_are_noops(self):
        obs.add("engine.cycles", 100)
        obs.gauge("g", 1.0)
        obs.event("violation", invariant="x")
        assert obs.counters() == {}
        assert obs.gauges() == {}
        assert obs.events() == []
        assert obs.value("engine.cycles") == 0.0


class TestSpans:
    def test_nesting_records_parent_ids(self):
        obs.enable()
        with obs.span("grid"):
            with obs.span("chunk"):
                with obs.span("cell"):
                    pass
        spans = obs.spans()
        by_name = {s.name: s for s in spans}
        assert by_name["cell"].parent_id == by_name["chunk"].span_id
        assert by_name["chunk"].parent_id == by_name["grid"].span_id
        assert by_name["grid"].parent_id is None
        # Inner spans close (and record) before outer ones.
        assert [s.name for s in spans] == ["cell", "chunk", "grid"]

    def test_attrs_and_mid_span_set(self):
        obs.enable()
        with obs.span("measure", design="duplexity") as sp:
            sp.set("source", "l1")
        (span,) = obs.spans()
        assert span.attrs == {"design": "duplexity", "source": "l1"}
        assert span.dur_s >= 0.0

    def test_exception_recorded_and_propagated(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("cell"):
                raise ValueError("boom")
        (span,) = obs.spans()
        assert span.attrs["error"] == "ValueError"

    def test_current_span_id(self):
        obs.enable()
        assert obs.current_span_id() is None
        with obs.span("grid"):
            assert obs.current_span_id() is not None

    def test_span_tree_edges(self):
        obs.enable()
        with obs.span("grid"):
            for _ in range(2):
                with obs.span("cell"):
                    pass
        assert obs.span_tree_edges() == {("cell", "grid"): 2, ("grid", None): 1}


class TestCountersGaugesEvents:
    def test_counters_accumulate(self):
        obs.enable()
        obs.add("engine.cycles", 10)
        obs.add("engine.cycles", 5)
        obs.add("engine.runs")
        assert obs.value("engine.cycles") == 15
        assert obs.counters() == {"engine.cycles": 15.0, "engine.runs": 1.0}

    def test_gauges_take_latest(self):
        obs.enable()
        obs.gauge("queue.depth", 3.0)
        obs.gauge("queue.depth", 1.0)
        assert obs.gauges() == {"queue.depth": 1.0}

    def test_events_attach_to_current_span(self):
        obs.enable()
        with obs.span("tail") as _:
            obs.event("violation", invariant="littles-law")
        (ev,) = obs.events()
        (span,) = obs.spans()
        assert ev.span_id == span.span_id
        assert ev.attrs["invariant"] == "littles-law"

    def test_reset_clears_everything(self):
        obs.enable()
        obs.add("c")
        with obs.span("s"):
            obs.event("e")
        obs.reset()
        assert not obs.is_enabled()
        assert obs.counters() == {}
        assert obs.spans() == []
        assert obs.events() == []


class TestWorkerDeltas:
    def test_delta_since_is_incremental(self):
        obs.enable()
        obs.add("engine.cycles", 7)
        with obs.span("before"):
            pass
        mark = obs.mark()
        obs.add("engine.cycles", 3)
        obs.add("new.counter")
        with obs.span("after"):
            pass
        delta = obs.delta_since(mark)
        assert delta.counters == {"engine.cycles": 3.0, "new.counter": 1.0}
        assert [s.name for s in delta.spans] == ["after"]

    def test_empty_delta(self):
        obs.enable()
        mark = obs.mark()
        assert obs.delta_since(mark).empty

    def test_merge_remaps_colliding_ids(self):
        obs.enable()
        # Parent-side spans claim the low ids.
        with obs.span("grid"):
            # A "worker" delta whose local ids collide with the parent's.
            worker = obs.ObsDelta(
                counters={"engine.cycles": 11.0},
                gauges={},
                spans=(
                    obs.SpanRecord(
                        name="chunk", span_id=1, parent_id=99, ts=0.0, dur_s=0.1
                    ),
                    obs.SpanRecord(
                        name="cell", span_id=2, parent_id=1, ts=0.0, dur_s=0.1
                    ),
                ),
                events=(
                    obs.EventRecord(name="violation", ts=0.0, span_id=2),
                ),
            )
            obs.merge_delta(worker)
        assert obs.value("engine.cycles") == 11.0
        spans = {s.name: s for s in obs.spans()}
        # Worker-local structure survives the remap...
        assert spans["cell"].parent_id == spans["chunk"].span_id
        # ...ids are re-allocated (no collision with the open grid span)...
        assert spans["chunk"].span_id != 1
        # ...and the worker's root (unknown parent 99) is adopted by the
        # span that was open at merge time.
        assert spans["chunk"].parent_id == spans["grid"].span_id
        (ev,) = obs.events()
        assert ev.span_id == spans["cell"].span_id

    def test_merge_is_noop_when_disabled(self):
        delta = obs.ObsDelta(
            counters={"x": 1.0}, gauges={}, spans=(), events=()
        )
        obs.merge_delta(delta)
        assert obs.counters() == {}

    def test_worker_config_round_trip(self):
        obs.enable()
        config = obs.config_for_worker()
        obs.reset()
        obs.configure_worker(config)
        assert obs.is_enabled()
        obs.reset()
        obs.configure_worker({"enabled": False})
        assert not obs.is_enabled()


class TestTraceStream:
    def test_trace_file_layout(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs.enable(trace_path=path, manifest={"schema": 1, "target": "t"})
        with obs.span("grid", workers=1):
            obs.add("grid.cells", 4)
            obs.event("note")
        obs.disable()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["type"] == "manifest"
        assert records[0]["target"] == "t"
        types = [r["type"] for r in records]
        assert types.count("span") == 1
        assert types.count("event") == 1
        assert records[-1]["type"] == "counters"
        assert records[-1]["counters"] == {"grid.cells": 4.0}
        span_rec = next(r for r in records if r["type"] == "span")
        assert span_rec["name"] == "grid"
        assert span_rec["attrs"] == {"workers": 1}

    def test_records_are_flushed_live(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs.enable(trace_path=path, manifest={"schema": 1})
        with obs.span("cell"):
            pass
        # Readable before disable(): each record is flushed as written.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        obs.disable()

    def test_enable_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "env.jsonl"))
        assert obs.enable_from_env()
        assert obs.trace_path() == tmp_path / "env.jsonl"
        obs.reset()
        monkeypatch.delenv("REPRO_TRACE")
        monkeypatch.setenv("REPRO_OBS", "1")
        assert obs.enable_from_env()
        assert obs.trace_path() is None
        obs.reset()
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not obs.enable_from_env()
