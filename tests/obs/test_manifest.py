"""Run manifests: content, sidecar paths, atomic round trip."""

from pathlib import Path

import repro
from repro.harness.cache import SCHEMA_VERSION
from repro.harness.fidelity import FAST
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifest,
    manifest_path_for,
    write_manifest,
)


def test_build_manifest_contents(monkeypatch):
    monkeypatch.setenv("REPRO_VALIDATE", "warn")
    m = build_manifest(
        target="fig5d",
        fidelity=FAST,
        argv=["fig5d", "--workers", "4"],
        extra={"workers": 4},
    )
    assert m["schema"] == MANIFEST_SCHEMA
    assert m["target"] == "fig5d"
    assert m["argv"] == ["fig5d", "--workers", "4"]
    assert m["package"] == {"name": "repro", "version": repro.__version__}
    assert m["cache_schema_version"] == SCHEMA_VERSION
    # Fidelity dataclasses expand field-by-field; the root seed is lifted
    # out so tooling need not know the knob layout.
    assert m["fidelity"]["name"] == FAST.name
    assert m["fidelity"]["queue_requests"] == FAST.queue_requests
    assert m["seed"] == FAST.seed
    assert m["env_overrides"]["REPRO_VALIDATE"] == "warn"
    assert m["workers"] == 4
    assert m["host"]["cpus"] >= 1


def test_non_dataclass_fidelity_passes_through():
    m = build_manifest(fidelity="fast")
    assert m["fidelity"] == "fast"
    assert m["seed"] is None


def test_manifest_path_for():
    assert manifest_path_for("out.jsonl") == Path("out.manifest.json")
    assert manifest_path_for("a/b/run.trace") == Path("a/b/run.manifest.json")
    assert manifest_path_for("plain") == Path("plain.manifest.json")


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "deep" / "run.manifest.json"
    manifest = build_manifest(target="cell")
    write_manifest(path, manifest)
    loaded = load_manifest(path)
    assert loaded["target"] == "cell"
    assert loaded["schema"] == MANIFEST_SCHEMA
    # Atomic write discipline: no temp litter next to the result.
    assert [p.name for p in path.parent.iterdir()] == [path.name]
