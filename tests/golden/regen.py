"""Regenerate the golden grid snapshot.

Usage (from the repository root)::

    PYTHONPATH=src python tests/golden/regen.py

Only regenerate after an intentional modelling change, and review the
resulting JSON diff — a shifted golden is a shifted figure.
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]
for entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)


def main() -> int:
    from repro import validate
    from repro.harness import cache

    cache.configure(enabled=False)  # goldens always come from fresh sims
    # Goldens must never be regenerated from invariant-violating runs:
    # force strict validation (overriding REPRO_VALIDATE) so any
    # conservation-law or range violation aborts before the file is
    # written.
    validate.set_mode(validate.Mode.STRICT)
    from tests.golden import write_cluster_golden, write_golden

    path = write_golden()
    print(f"wrote {path}")
    path = write_cluster_golden()
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
