"""Golden snapshot of a reduced evaluation grid.

``grid_small.json`` pins the exact numbers of a 2-design x 2-workload x
2-load sweep at a deterministic reduced fidelity, so refactors of the
harness/simulators cannot silently shift the Figure-5/6 trends.  The
comparator in ``tests/harness/test_golden.py`` is tolerance-aware
(tiny cross-platform floating-point wiggle is fine; real shifts fail).

Regenerate after an *intentional* modelling change with::

    PYTHONPATH=src python tests/golden/regen.py

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.harness.experiment import run_grid
from repro.harness.fidelity import FAST

GOLDEN_PATH = Path(__file__).parent / "grid_small.json"

#: Reduced but representative: the baseline against the headline design,
#: one stall-heavy and one stall-free workload, a low and a high load.
GOLDEN_DESIGNS = ("baseline", "duplexity")
GOLDEN_WORKLOAD_NAMES = ("McRouter", "WordStem")
GOLDEN_LOADS = (0.3, 0.7)

GOLDEN_FIDELITY = dataclasses.replace(
    FAST,
    name="golden",
    num_requests=4,
    warmup_requests=1,
    filler_trace_instructions=4000,
    prewarm_filler_cycles=15_000,
    lender_instructions=12_000,
    queue_requests=4000,
    queue_warmup=400,
)


def golden_workloads():
    from repro.workloads.microservices import mcrouter, wordstem

    return [mcrouter(), wordstem()]


def compute_cells():
    """The golden sweep, always through the serial path."""
    return run_grid(
        designs=list(GOLDEN_DESIGNS),
        workloads=golden_workloads(),
        loads=GOLDEN_LOADS,
        fidelity=GOLDEN_FIDELITY,
        workers=1,
    )


def build_payload() -> dict:
    return {
        "schema": 1,
        "fidelity": dataclasses.asdict(GOLDEN_FIDELITY),
        "designs": list(GOLDEN_DESIGNS),
        "workloads": list(GOLDEN_WORKLOAD_NAMES),
        "loads": list(GOLDEN_LOADS),
        "cells": [dataclasses.asdict(cell) for cell in compute_cells()],
    }


def write_golden(payload: dict | None = None) -> Path:
    payload = payload if payload is not None else build_payload()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return GOLDEN_PATH


def load_golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())
