"""Golden snapshot of a reduced evaluation grid.

``grid_small.json`` pins the exact numbers of a 2-design x 2-workload x
2-load sweep at a deterministic reduced fidelity, so refactors of the
harness/simulators cannot silently shift the Figure-5/6 trends.  The
comparator in ``tests/harness/test_golden.py`` is tolerance-aware
(tiny cross-platform floating-point wiggle is fine; real shifts fail).

Regenerate after an *intentional* modelling change with::

    PYTHONPATH=src python tests/golden/regen.py

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.harness.experiment import run_grid
from repro.harness.fidelity import FAST

GOLDEN_PATH = Path(__file__).parent / "grid_small.json"

#: Reduced but representative: the baseline against the headline design,
#: one stall-heavy and one stall-free workload, a low and a high load.
GOLDEN_DESIGNS = ("baseline", "duplexity")
GOLDEN_WORKLOAD_NAMES = ("McRouter", "WordStem")
GOLDEN_LOADS = (0.3, 0.7)

GOLDEN_FIDELITY = dataclasses.replace(
    FAST,
    name="golden",
    num_requests=4,
    warmup_requests=1,
    filler_trace_instructions=4000,
    prewarm_filler_cycles=15_000,
    lender_instructions=12_000,
    queue_requests=4000,
    queue_warmup=400,
)


def golden_workloads():
    from repro.workloads.microservices import mcrouter, wordstem

    return [mcrouter(), wordstem()]


def compute_cells():
    """The golden sweep, always through the serial path."""
    return run_grid(
        designs=list(GOLDEN_DESIGNS),
        workloads=golden_workloads(),
        loads=GOLDEN_LOADS,
        fidelity=GOLDEN_FIDELITY,
        workers=1,
    )


def build_payload() -> dict:
    return {
        "schema": 1,
        "fidelity": dataclasses.asdict(GOLDEN_FIDELITY),
        "designs": list(GOLDEN_DESIGNS),
        "workloads": list(GOLDEN_WORKLOAD_NAMES),
        "loads": list(GOLDEN_LOADS),
        "cells": [dataclasses.asdict(cell) for cell in compute_cells()],
    }


def write_golden(payload: dict | None = None) -> Path:
    payload = payload if payload is not None else build_payload()
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return GOLDEN_PATH


def load_golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


# ----------------------------------------------------------------------
# Cluster golden: one (design, workload, load) point across topologies
# ----------------------------------------------------------------------

CLUSTER_GOLDEN_PATH = Path(__file__).parent / "cluster_small.json"

#: Representative topologies at one load point: the vectorized executor
#: (random), both event-loop balancers (jsq, power-of-two), and bursty
#: arrivals.
GOLDEN_CLUSTER_LOAD = 0.6


def golden_cluster_configs():
    from repro.cluster.experiment import ClusterConfig

    return (
        ClusterConfig(
            n_servers=4, fanout=2, balancer="random",
            num_requests=4000, warmup=400,
        ),
        ClusterConfig(
            n_servers=4, fanout=2, balancer="jsq",
            num_requests=4000, warmup=400,
        ),
        ClusterConfig(
            n_servers=4, fanout=2, balancer="random", arrivals="mmpp",
            num_requests=4000, warmup=400,
        ),
        ClusterConfig(
            n_servers=4, fanout=2, balancer="power_of_two",
            num_requests=4000, warmup=400,
        ),
    )


def compute_cluster_cells():
    from repro.cluster.experiment import run_cluster_cell
    from repro.workloads.microservices import wordstem

    return [
        run_cluster_cell(
            "duplexity", wordstem(), GOLDEN_CLUSTER_LOAD, config,
            GOLDEN_FIDELITY,
        )
        for config in golden_cluster_configs()
    ]


def build_cluster_payload() -> dict:
    return {
        "schema": 1,
        "fidelity": dataclasses.asdict(GOLDEN_FIDELITY),
        "load": GOLDEN_CLUSTER_LOAD,
        "configs": [
            dataclasses.asdict(config) for config in golden_cluster_configs()
        ],
        "cells": [dataclasses.asdict(cell) for cell in compute_cluster_cells()],
    }


def write_cluster_golden(payload: dict | None = None) -> Path:
    payload = payload if payload is not None else build_cluster_payload()
    CLUSTER_GOLDEN_PATH.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    return CLUSTER_GOLDEN_PATH


def load_cluster_golden() -> dict:
    return json.loads(CLUSTER_GOLDEN_PATH.read_text())
