"""Profiler core: lifecycle, exact distribution, deltas, waterfalls.

The load-bearing properties: :func:`repro.prof._distribute` conserves
its total exactly for any weight vector; a worker-style
mark/delta/merge roundtrip reproduces the serial totals; and turning
the profiler on never changes M/G/1 simulation results (the exemplar
sampler's RNG is private).
"""

import numpy as np
import pytest

from repro import prof
from repro.common.distributions import Exponential
from repro.prof import _distribute
from repro.prof.taxonomy import SlotCause
from repro.queueing.mg1 import MG1Simulator, RestartPenaltyService
from repro.uarch.cores import BaselineCoreModel
from tests.uarch.test_cores import trace


@pytest.fixture(autouse=True)
def _clean_prof():
    prof.reset()
    yield
    prof.reset()


class TestLifecycle:
    def test_enable_disable_reset(self):
        assert not prof.is_enabled()
        prof.enable()
        assert prof.is_enabled()
        prof.disable()
        assert not prof.is_enabled()
        prof.enable()
        prof.reset()
        assert not prof.is_enabled()
        assert prof.snapshot().empty

    def test_enable_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROF", raising=False)
        assert not prof.enable_from_env()
        monkeypatch.setenv("REPRO_PROF", "1")
        assert prof.enable_from_env()
        assert prof.is_enabled()

    def test_context_labels_namespace_cores(self):
        prof.enable()
        with prof.context(design="duplexity", workload="McRouter"):
            assert prof._core_key("lender") == "McRouter/lender"
        assert prof._core_key("lender") == "lender"

    def test_context_is_noop_when_off(self):
        with prof.context(design="x", workload="y"):
            assert prof._core_key("core") == "core"


class TestDistribute:
    @pytest.mark.parametrize(
        "total,weights",
        [
            (0, [1, 2, 3]),
            (10, []),
            (10, [0, 0]),
            (7, [1, 1, 1]),
            (1, [3, 5]),
            (1000, [1, 999]),
            (12345, [7, 0, 13, 999, 1]),
        ],
    )
    def test_exact_conservation(self, total, weights):
        alloc = _distribute(total, weights)
        expected = total if (total > 0 and sum(weights) > 0) else 0
        assert sum(alloc) == expected
        assert all(a >= 0 for a in alloc)

    def test_randomized_conservation(self):
        rng = np.random.default_rng(42)
        for _ in range(200):
            total = int(rng.integers(0, 10_000))
            weights = [int(w) for w in rng.integers(0, 1000, size=rng.integers(1, 9))]
            alloc = _distribute(total, weights)
            if total > 0 and sum(weights) > 0:
                assert sum(alloc) == total
            else:
                assert sum(alloc) == 0

    def test_proportionality_within_one(self):
        total, weights = 1000, [1, 2, 7]
        alloc = _distribute(total, weights)
        for a, w in zip(alloc, weights):
            assert abs(a - total * w / 10) < 1

    def test_zero_weight_gets_nothing(self):
        assert _distribute(100, [0, 5])[0] == 0


def _profile_one_run():
    """One small profiled core run; returns the resulting snapshot."""
    model = BaselineCoreModel()
    with prof.context(workload="W"):
        model.run(trace(4000))
    return prof.snapshot()


class TestDeltaMerge:
    def test_roundtrip_reproduces_serial_totals(self):
        prof.enable()
        serial = _profile_one_run()

        prof.reset()
        prof.enable()
        mark = prof.mark()
        merged_snapshot_input = _profile_one_run()
        delta = prof.delta_since(mark)
        assert not delta.empty

        prof.reset()
        prof.configure_worker({"enabled": True})
        prof.merge_delta(delta)
        merged = prof.snapshot()
        assert merged == serial
        assert merged == merged_snapshot_input

    def test_configure_worker_starts_clean(self):
        prof.enable()
        _profile_one_run()
        assert not prof.snapshot().empty
        # A forked worker inherits the parent's totals; configure_worker
        # must wipe them so the worker's delta is worker-only.
        prof.configure_worker({"enabled": True})
        assert prof.is_enabled()
        assert prof.snapshot().empty

    def test_merge_is_noop_when_off(self):
        prof.enable()
        mark = prof.mark()
        _profile_one_run()
        delta = prof.delta_since(mark)
        prof.reset()
        prof.merge_delta(delta)
        assert prof.snapshot().empty


class TestMg1Waterfalls:
    def test_results_identical_with_profiling_on(self):
        service = RestartPenaltyService(Exponential(1e-6), penalty=2e-7)
        plain = MG1Simulator.at_load(0.6, service, seed=5).run(
            num_requests=800, warmup=100
        )
        prof.enable()
        profiled = MG1Simulator.at_load(0.6, service, seed=5).run(
            num_requests=800, warmup=100
        )
        assert np.array_equal(plain.wait_times, profiled.wait_times)
        assert np.array_equal(plain.service_times, profiled.service_times)
        assert plain.busy_time == profiled.busy_time
        assert plain.duration == profiled.duration

    def test_waterfall_fields(self):
        prof.enable()
        service = RestartPenaltyService(Exponential(1e-6), penalty=2e-7)
        with prof.context(design="duplexity", workload="McRouter"):
            result = MG1Simulator.at_load(0.6, service, seed=5).run(
                num_requests=800, warmup=100
            )
        snap = prof.snapshot()
        (record,) = snap.waterfalls
        assert record.design == "duplexity"
        assert record.workload == "McRouter"
        assert record.requests == result.num_requests
        assert record.penalty_s == pytest.approx(2e-7)
        assert 0 < record.penalized_requests <= record.requests
        assert record.p99_sojourn_s >= record.p50_sojourn_s > 0
        assert record.exemplars
        sojourns = [e.sojourn_s for e in record.exemplars]
        assert sojourns == sorted(sojourns, reverse=True)
        for e in record.exemplars:
            assert e.sojourn_s == pytest.approx(e.wait_s + e.service_s)
            assert e.penalty_s in (0.0, pytest.approx(2e-7))
        # The top exemplar is the observed maximum sojourn.
        assert sojourns[0] == pytest.approx(
            float((result.wait_times + result.service_times).max())
        )

    def test_waterfalls_deterministic(self):
        service = RestartPenaltyService(Exponential(1e-6), penalty=2e-7)
        prof.enable()
        MG1Simulator.at_load(0.6, service, seed=5).run(
            num_requests=800, warmup=100
        )
        first = prof.snapshot().waterfalls
        prof.reset()
        prof.enable()
        MG1Simulator.at_load(0.6, service, seed=5).run(
            num_requests=800, warmup=100
        )
        assert prof.snapshot().waterfalls == first

    def test_tail_attachment(self):
        prof.enable()
        with prof.context(design="baseline", workload="WordStem"):
            prof.attach_tail(1e6, 0.99, 3.2e-6)
        (tail,) = prof.snapshot().tails
        assert tail.design == "baseline"
        assert tail.workload == "WordStem"
        assert tail.quantile == 0.99
        assert tail.tail_s == pytest.approx(3.2e-6)


class TestIntervalSampler:
    def test_intervals_emitted_for_long_runs(self):
        prof.enable()
        model = BaselineCoreModel()
        model.run(trace(60_000))
        snap = prof.snapshot()
        samples = [s for s in snap.intervals if s.core == "baseline"]
        assert samples
        for s in samples:
            assert s.window_cycles >= prof.IntervalSampler.DEFAULT_WINDOW
            assert s.instructions > 0
            assert s.ipc == pytest.approx(s.instructions / s.window_cycles)
            assert s.l1d_mpki >= 0.0
            assert s.active_threads >= 0
        cycles = [s.cycle for s in samples]
        assert cycles == sorted(cycles)

    def test_stale_scratch_cleared_after_disable(self):
        prof.enable()
        model = BaselineCoreModel()
        model.run(trace(2000), max_instructions=1000)
        assert model.engine.threads[0].prof is not None
        prof.disable()
        model.engine.run(max_instructions=500)
        assert model.engine.threads[0].prof is None
        assert model.engine._prof_sampler is None


class TestSnapshotStructure:
    def test_core_profile_categories_sum_to_total(self):
        prof.enable()
        snap = _profile_one_run()
        (core,) = [c for c in snap.cores if c.core == "W/baseline"]
        assert core.conserved()
        assert sum(core.by_category().values()) == core.slots_total
        assert core.slots.get(int(SlotCause.RETIRING)) == 4000

    def test_folded_lines_parse(self):
        prof.enable()
        snap = _profile_one_run()
        lines = snap.folded_lines()
        assert lines
        total = 0
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert ";" in stack
            total += int(value)
        assert total == sum(c.slots_total for c in snap.cores)
