"""Slot-cause taxonomy: totality and engine-side mapping.

The regression pinned here: every cause the engine can charge maps to
exactly one top-down category — a new engine-side cause that is not in
the taxonomy (or a taxonomy member without a category) fails loudly
instead of landing in a silent "other" bucket.
"""

import repro.uarch.engine as engine_mod
from repro.prof.taxonomy import (
    CATEGORIES,
    CATEGORY,
    NUM_CAUSES,
    DyadPhase,
    SlotCause,
)


class TestTotality:
    def test_every_cause_categorized_exactly_once(self):
        assert set(CATEGORY) == set(SlotCause)

    def test_every_category_value_is_known(self):
        assert set(CATEGORY.values()) == set(CATEGORIES)

    def test_causes_are_dense_small_ints(self):
        # The engine indexes a plain list with these; they must be a
        # dense 0..N-1 range.
        assert sorted(int(c) for c in SlotCause) == list(range(NUM_CAUSES))
        assert NUM_CAUSES == len(SlotCause)


class TestEngineMapping:
    def test_engine_charge_constants_map_into_taxonomy(self):
        consts = {
            name: value
            for name, value in vars(engine_mod).items()
            if name.startswith("_C_")
        }
        assert consts, "engine no longer charges any slot causes"
        for name, value in consts.items():
            cause = SlotCause(value)  # raises ValueError if unmapped
            assert cause in CATEGORY, f"{name} has no category"

    def test_engine_never_charges_retiring_or_idle(self):
        # RETIRING is derived from retired-instruction counts and IDLE is
        # the attribution residual; neither may appear as a stall charge.
        values = {
            value
            for name, value in vars(engine_mod).items()
            if name.startswith("_C_")
        }
        assert int(SlotCause.RETIRING) not in values
        assert int(SlotCause.IDLE) not in values

    def test_remote_causes_form_the_remote_category(self):
        assert CATEGORY[SlotCause.REMOTE_STALL] == "remote"
        assert CATEGORY[SlotCause.CONTEXT_SWAP] == "remote"


class TestDyadPhases:
    def test_phases_are_distinct_dense_ints(self):
        assert sorted(int(p) for p in DyadPhase) == list(
            range(len(DyadPhase))
        )
