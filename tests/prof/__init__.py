"""Microarchitectural profiler (repro.prof) tests."""
