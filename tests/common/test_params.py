"""Configuration dataclasses (Table I/II parameters)."""

import pytest

from repro.common import params
from repro.common.units import KB, MB


class TestCacheConfig:
    def test_l1_shape(self):
        assert params.L1I_CONFIG.size_bytes == 64 * KB
        assert params.L1I_CONFIG.associativity == 2
        assert params.L1I_CONFIG.num_sets == 512

    def test_llc_shape(self):
        assert params.LLC_CONFIG_PER_CORE.size_bytes == 1 * MB
        assert params.LLC_CONFIG_PER_CORE.associativity == 8

    def test_l0_write_through(self):
        assert params.L0I_CONFIG.write_through
        assert params.L0D_CONFIG.write_through
        assert params.L0I_CONFIG.size_bytes == 2 * KB
        assert params.L0D_CONFIG.size_bytes == 4 * KB

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            params.CacheConfig(size_bytes=0, associativity=2)
        with pytest.raises(ValueError):
            params.CacheConfig(size_bytes=1024, associativity=3, line_bytes=64)


class TestTableIConfigs:
    def test_baseline_ooo(self):
        cfg = params.OoOCoreConfig()
        assert cfg.width == 4
        assert cfg.rob_entries == 144
        assert cfg.load_queue_entries == 48
        assert cfg.store_queue_entries == 32
        assert cfg.predictor.kind == "tournament"

    def test_tournament_sizes(self):
        p = params.MASTER_PREDICTOR
        assert p.bimodal_entries == 16 * 1024
        assert p.gshare_entries == 16 * 1024
        assert p.selector_entries == 16 * 1024
        assert p.btb_entries == 2 * 1024
        assert p.ras_entries == 32

    def test_lender_core(self):
        cfg = params.LenderCoreConfig()
        assert cfg.physical_contexts == 8
        assert cfg.virtual_contexts == 32
        assert cfg.issue_width == 4
        assert cfg.arf_entries == 128
        assert cfg.predictor.kind == "gshare"
        assert cfg.quantum_us == 100.0

    def test_master_core(self):
        cfg = params.MasterCoreConfig()
        assert cfg.filler_contexts == 8
        assert cfg.fast_restart_cycles == 50
        assert cfg.filler_predictor.kind == "gshare"
        assert cfg.filler_predictor.gshare_entries == 8 * 1024
        assert not cfg.replicate_caches

    def test_tlbs(self):
        assert params.TLBConfig().entries == 64

    def test_memory_latency(self):
        assert params.MEMORY_LATENCY_NS == 50.0

    def test_remote_l1_hop(self):
        assert params.REMOTE_L1_EXTRA_CYCLES == 3

    def test_nic(self):
        nic = params.NICConfig()
        assert nic.data_rate_gbps == 56.0
        assert nic.max_iops == 90e6


class TestSMTConfig:
    def test_default_icount(self):
        cfg = params.SMTCoreConfig()
        assert cfg.fetch_policy == "icount"
        assert cfg.threads == 2

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            params.SMTCoreConfig(fetch_policy="roundrobin")

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            params.SMTCoreConfig(corunner_storage_cap=0.0)


class TestTableII:
    def test_area_values(self):
        assert params.TABLE_II_AREA_MM2["baseline"] == 12.1
        assert params.TABLE_II_AREA_MM2["master_core"] == 12.7
        assert params.TABLE_II_AREA_MM2["master_core_replication"] == 16.7
        assert params.TABLE_II_AREA_MM2["lender_core"] == 5.5
        assert params.TABLE_II_AREA_MM2["llc_per_mb"] == 3.9

    def test_frequency_values(self):
        assert params.TABLE_II_FREQUENCY_GHZ["baseline"] == 3.4
        assert params.TABLE_II_FREQUENCY_GHZ["master_core"] == 3.25

    def test_predictor_kind_validation(self):
        with pytest.raises(ValueError):
            params.BranchPredictorConfig(kind="perceptron")
