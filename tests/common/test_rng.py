"""Deterministic RNG stream derivation."""

import numpy as np

from repro.common.rng import SeedSequenceFactory, derive_seed, stream


def test_derive_seed_deterministic():
    assert derive_seed(42, "caches") == derive_seed(42, "caches")


def test_derive_seed_label_sensitivity():
    assert derive_seed(42, "caches") != derive_seed(42, "cachet")


def test_derive_seed_root_sensitivity():
    assert derive_seed(42, "x") != derive_seed(43, "x")


def test_stream_reproducible():
    a = stream(7, "workload").random(8)
    b = stream(7, "workload").random(8)
    np.testing.assert_array_equal(a, b)


def test_streams_independent():
    a = stream(7, "one").random(64)
    b = stream(7, "two").random(64)
    assert not np.array_equal(a, b)


def test_factory_get_replayable():
    factory = SeedSequenceFactory(3)
    first = factory.get("queue").random(4)
    second = factory.get("queue").random(4)
    np.testing.assert_array_equal(first, second)


def test_factory_child_namespacing():
    root = SeedSequenceFactory(3)
    child_a = root.child("a")
    child_b = root.child("b")
    assert not np.array_equal(child_a.get("x").random(8), child_b.get("x").random(8))


def test_child_differs_from_root():
    root = SeedSequenceFactory(3)
    child = root.child("a")
    assert not np.array_equal(root.get("x").random(8), child.get("x").random(8))


def test_adjacent_roots_uncorrelated():
    # SHA-based derivation: adjacent seeds give unrelated streams.
    a = stream(100, "s").random(256)
    b = stream(101, "s").random(256)
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.2
