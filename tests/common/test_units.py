"""Unit-conversion helpers."""

import math

import pytest

from repro.common import units


def test_seconds_from_us():
    assert units.seconds_from_us(1.0) == 1e-6
    assert units.seconds_from_us(2500.0) == pytest.approx(2.5e-3)


def test_us_from_seconds_roundtrip():
    assert units.us_from_seconds(units.seconds_from_us(17.5)) == pytest.approx(17.5)


def test_seconds_from_ns():
    assert units.seconds_from_ns(50.0) == pytest.approx(50e-9)


def test_ns_roundtrip():
    assert units.ns_from_seconds(units.seconds_from_ns(123.0)) == pytest.approx(123.0)


def test_cycles_from_seconds():
    assert units.cycles_from_seconds(1e-6, 3.4e9) == pytest.approx(3400.0)


def test_seconds_from_cycles_inverse():
    s = units.seconds_from_cycles(6800, 3.4e9)
    assert s == pytest.approx(2e-6)


def test_cycles_from_us_at_table_frequency():
    # 100 us quantum at 3.25 GHz = 325,000 cycles (Section IV).
    assert units.cycles_from_us(100.0, units.ghz(3.25)) == pytest.approx(325_000)


def test_cycles_from_ns_memory_latency():
    # 50 ns DRAM at 3.4 GHz = 170 cycles (Table I).
    assert units.cycles_from_ns(50.0, units.ghz(3.4)) == pytest.approx(170.0)


def test_ghz():
    assert units.ghz(3.4) == pytest.approx(3.4e9)


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_nonpositive_frequency_rejected(bad):
    with pytest.raises(ValueError):
        units.cycles_from_seconds(1.0, bad)
    with pytest.raises(ValueError):
        units.seconds_from_cycles(1.0, bad)


def test_us_from_cycles():
    assert units.us_from_cycles(3400, 3.4e9) == pytest.approx(1.0)


def test_size_constants():
    assert units.KB == 1024
    assert units.MB == 1024 * 1024
    assert not math.isnan(units.NS_PER_S)


class TestQuantizeCycles:
    """The single timing-path float->cycles conversion (truncation).

    Pinned so the truncate-vs-round split cannot re-diverge between the
    reference engine, the scheduler quantum, and the compiled kernel's
    precomputed stall columns.
    """

    def test_truncates_not_rounds(self):
        assert units.quantize_cycles(3249.9999) == 3249
        assert units.quantize_cycles(3250.0) == 3250
        assert units.quantize_cycles(0.999) == 0

    def test_engine_stall_conversion_pinned(self):
        from repro.uarch.engine import TimingEngine

        engine = TimingEngine(frequency_hz=3.25e9)
        # 1000 ns at 3.25 GHz is exactly 3250 cycles; 999 ns truncates.
        assert engine.stall_cycles_for_ns(1000.0) == 3250
        assert engine.stall_cycles_for_ns(999.0) == 3246  # 3246.75 -> 3246

    def test_scalar_matches_vectorized_stall_columns(self):
        """The fastpath adapter precomputes per-instruction stall cycles
        as a vectorized column; it must agree with the scalar engine
        conversion element for element."""
        import numpy as np

        from repro.uarch.engine import TimingEngine

        hz = 3.25e9
        engine = TimingEngine(frequency_hz=hz)
        stall_ns = np.array([0.0, 50.0, 999.0, 1000.0, 12_345.678, 2e6])
        vectorized = (stall_ns * hz / 1e9).astype(np.int64)
        scalar = [engine.stall_cycles_for_ns(float(ns)) for ns in stall_ns]
        assert vectorized.tolist() == scalar
