"""Latency/service-time distribution behaviour."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.distributions import (
    Deterministic,
    Exponential,
    LogNormal,
    Mixture,
    Pareto,
    SumDistribution,
    Uniform,
)


def rng():
    return np.random.default_rng(0)


class TestDeterministic:
    def test_mean(self):
        assert Deterministic(3.0).mean() == 3.0

    def test_sample_constant(self):
        d = Deterministic(2.5)
        assert d.sample(rng()) == 2.5
        np.testing.assert_array_equal(d.sample_many(rng(), 4), [2.5] * 4)

    def test_cv2_zero(self):
        assert Deterministic(1.0).squared_coefficient_of_variation() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestExponential:
    def test_sample_mean_converges(self):
        d = Exponential(2.0)
        samples = d.sample_many(rng(), 40_000)
        assert samples.mean() == pytest.approx(2.0, rel=0.05)

    def test_cv2_is_one(self):
        assert Exponential(5.0).squared_coefficient_of_variation() == 1.0

    def test_all_nonnegative(self):
        assert (Exponential(1.0).sample_many(rng(), 1000) >= 0).all()

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestUniform:
    def test_mean(self):
        assert Uniform(3.0, 5.0).mean() == 4.0

    def test_bounds(self):
        samples = Uniform(3.0, 5.0).sample_many(rng(), 1000)
        assert samples.min() >= 3.0
        assert samples.max() <= 5.0

    def test_cv2(self):
        u = Uniform(0.0, 2.0)
        # var = (b-a)^2/12 = 1/3, mean = 1 -> cv2 = 1/3
        assert u.squared_coefficient_of_variation() == pytest.approx(1 / 3)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 3.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 3.0)


class TestLogNormal:
    def test_mean_converges(self):
        d = LogNormal(4.0, cv2=0.5)
        assert d.sample_many(rng(), 60_000).mean() == pytest.approx(4.0, rel=0.05)

    def test_cv2_roundtrip(self):
        d = LogNormal(1.0, cv2=2.0)
        samples = d.sample_many(rng(), 200_000)
        cv2 = samples.var() / samples.mean() ** 2
        assert cv2 == pytest.approx(2.0, rel=0.15)

    def test_invalid(self):
        with pytest.raises(ValueError):
            LogNormal(0.0)
        with pytest.raises(ValueError):
            LogNormal(1.0, cv2=0.0)


class TestPareto:
    def test_mean_converges(self):
        d = Pareto(2.0, shape=3.0)
        assert d.sample_many(rng(), 200_000).mean() == pytest.approx(2.0, rel=0.1)

    def test_heavy_tail_cv2(self):
        assert Pareto(1.0, shape=2.5).squared_coefficient_of_variation() == pytest.approx(5.0)
        assert math.isinf(Pareto(1.0, shape=1.5).squared_coefficient_of_variation())

    def test_shape_must_exceed_one(self):
        with pytest.raises(ValueError):
            Pareto(1.0, shape=1.0)


class TestScaled:
    def test_mean_scales(self):
        assert Exponential(2.0).scaled(3.0).mean() == pytest.approx(6.0)

    def test_cv2_invariant(self):
        assert Exponential(2.0).scaled(3.0).squared_coefficient_of_variation() == 1.0

    def test_sample_many_scaled(self):
        base = Deterministic(1.5)
        np.testing.assert_allclose(base.scaled(2.0).sample_many(rng(), 3), [3.0] * 3)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            Exponential(1.0).scaled(0.0)


class TestSum:
    def test_mean_adds(self):
        s = SumDistribution((Deterministic(1.0), Exponential(2.0)))
        assert s.mean() == pytest.approx(3.0)

    def test_sample_mean(self):
        s = SumDistribution((Exponential(1.0), Exponential(2.0)))
        assert s.sample_many(rng(), 50_000).mean() == pytest.approx(3.0, rel=0.05)

    def test_cv2_of_deterministic_sum_is_zero(self):
        s = SumDistribution((Deterministic(1.0), Deterministic(2.0)))
        assert s.squared_coefficient_of_variation() == 0.0

    def test_rsc_like_composition(self):
        # 3 us lookup + 8 us Optane + 4 us memcpy = 15 us mean.
        s = SumDistribution(
            (Deterministic(3.0), Exponential(8.0), Deterministic(4.0))
        )
        assert s.mean() == pytest.approx(15.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SumDistribution(())


class TestMixture:
    def test_mean(self):
        m = Mixture((Deterministic(1.0), Deterministic(3.0)), (0.5, 0.5))
        assert m.mean() == pytest.approx(2.0)

    def test_sample_many_mixes(self):
        m = Mixture((Deterministic(1.0), Deterministic(3.0)), (0.25, 0.75))
        samples = m.sample_many(rng(), 20_000)
        assert set(np.unique(samples)) == {1.0, 3.0}
        assert samples.mean() == pytest.approx(2.5, rel=0.05)

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            Mixture((Deterministic(1.0),), (0.5,))
        with pytest.raises(ValueError):
            Mixture((Deterministic(1.0), Deterministic(2.0)), (0.5,))


@settings(max_examples=30, deadline=None)
@given(
    mean=st.floats(min_value=0.01, max_value=100.0),
    factor=st.floats(min_value=0.01, max_value=100.0),
)
def test_scaled_mean_property(mean, factor):
    assert Exponential(mean).scaled(factor).mean() == pytest.approx(mean * factor)


@settings(max_examples=30, deadline=None)
@given(
    means=st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=5)
)
def test_sum_mean_property(means):
    s = SumDistribution(tuple(Deterministic(m) for m in means))
    assert s.mean() == pytest.approx(sum(means))
    assert s.sample(rng()) == pytest.approx(sum(means))


@settings(max_examples=20, deadline=None)
@given(mean=st.floats(min_value=0.01, max_value=10.0))
def test_samples_nonnegative_property(mean):
    for dist in (Exponential(mean), LogNormal(mean), Pareto(mean, 2.5)):
        assert (dist.sample_many(rng(), 50) >= 0).all()
