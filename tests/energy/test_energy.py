"""Energy attribution plane: exact integer conservation, worker deltas,
non-interference, the CLI target, and the degenerate power paths.

The properties pinned here mirror the prof/tailobs integration suites:

* every ledger row conserves as an *integer* identity — shares sum to
  the power model integrated over the run's cycles, recomputable from
  the stored model inputs (and the validator recomputes them);
* energy capture never changes simulation results — the golden grid
  payload is byte-identical with the plane on or off;
* a pooled sweep reproduces the serial run's ledgers exactly;
* the ``energy`` CLI target renders a conservation-checked report and
  streams ``type=energy`` records plus power-model coefficients into
  the trace/manifest.
"""

import dataclasses
import json
import pickle

import numpy as np
import pytest

from repro import energy, obs, prof, validate
from repro.cli import main
from repro.energy import (
    CLUSTER_RUN_CAP,
    CORE_SHARES,
    WATERFALL_CAP,
    WATERFALL_SHARES,
    EnergySnapshot,
)
from repro.energy.render import render_energy_report
from repro.harness import cache
from repro.harness.experiment import clear_tail_cache, run_grid
from repro.harness.measure import clear_cache
from repro.harness.parallel import GridRunStats, run_single_cell
from repro.harness.reporting import format_grid_stats, format_table
from repro.power.mcpat import core_power_model, lender_power_model
from repro.workloads.microservices import mcrouter
from tests.harness.test_measure import TINY


@pytest.fixture(autouse=True)
def _clean_planes():
    energy.reset()
    prof.reset()
    obs.reset()
    yield
    energy.reset()
    prof.reset()
    obs.reset()


@pytest.fixture
def fresh_caches(tmp_path):
    previous = cache.current_config()
    clear_cache()
    clear_tail_cache()
    cache.configure(root=tmp_path / "cache")
    yield
    clear_cache()
    clear_tail_cache()
    cache.configure(**previous)


@pytest.fixture(scope="module")
def cell_snapshots():
    """One energy-profiled simulation of both designs, shared by the
    conservation tests (frozen snapshots; state is reset afterwards)."""
    previous = cache.current_config()
    clear_cache()
    clear_tail_cache()
    cache.configure(enabled=False)
    prof.reset()
    energy.reset()
    energy.enable()
    for design in ("baseline", "duplexity"):
        run_single_cell(design, mcrouter(), 0.6, TINY)
    esnap = energy.snapshot()
    psnap = prof.snapshot()
    energy.reset()
    prof.reset()
    clear_cache()
    clear_tail_cache()
    cache.configure(**previous)
    return esnap, psnap


class TestLifecycle:
    def test_off_by_default_records_nothing(self):
        assert not energy.is_enabled()
        with prof.context(design="baseline", workload="W"):
            energy.record_mg1_run(
                rate=1e5, requests=10, busy_s=0.5, duration_s=1.0
            )
        assert energy.snapshot().empty

    def test_enable_implies_prof(self):
        energy.enable()
        assert energy.is_enabled()
        assert prof.is_enabled()
        energy.disable()
        assert not energy.is_enabled()
        # The profiler's lifetime belongs to whoever enabled it.
        assert prof.is_enabled()

    def test_reset_clears_everything(self):
        energy.enable()
        energy.set_budget(1e-4)
        with prof.context(design="baseline", workload="W"):
            energy.record_mg1_run(
                rate=1e5, requests=10, busy_s=0.5, duration_s=1.0
            )
        assert energy.live_totals()["waterfalls"] == 1
        energy.reset()
        assert not energy.is_enabled()
        assert energy.budget_j() is None
        assert energy.snapshot().empty

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no"])
    def test_env_falsy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_ENERGY", value)
        assert not energy.enable_from_env()
        assert not energy.is_enabled()

    def test_env_truthy(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENERGY", "1")
        assert energy.enable_from_env()
        assert energy.is_enabled()
        assert prof.is_enabled()


class TestCoreConservation:
    def test_every_core_conserves_exactly(self, cell_snapshots):
        esnap, _ = cell_snapshots
        assert esnap.cores
        # Core keys are workload-namespaced; the second design's run
        # re-registers the same engines, so its meta wins.
        assert {c.design for c in esnap.cores} == {"duplexity"}
        for core in esnap.cores:
            assert core.conserved()
            # Recompute the grid totals from the stored model inputs.
            static = round(
                core.static_w * core.cycles / core.frequency_hz * 1e12
            )
            dynamic = (core.retired_main + core.retired_filler) * core.epi_pj
            assert core.static_pj == static
            assert core.total_pj == static + dynamic
            assert sum(core.shares_pj.values()) == core.total_pj
            assert sum(core.static_by_category_pj.values()) == core.static_pj
            assert set(core.shares_pj) == set(CORE_SHARES)
            assert all(v >= 0 for v in core.shares_pj.values())

    def test_mode_to_epi_classification(self, cell_snapshots):
        esnap, _ = cell_snapshots
        by_mode = {}
        for core in esnap.cores:
            by_mode.setdefault(core.mode, core)
        for mode, core in by_mode.items():
            if mode == "ino-smt":
                # The lender: its own (smaller) power model, in-order EPI.
                lender = lender_power_model()
                assert core.static_w == lender.static_w
                assert core.epi_pj == round(lender.epi_inorder_nj * 1000)
            elif mode in ("hsmt-filler", "ino-filler"):
                assert core.epi_pj == 450
            else:  # ooo / hsmt / smt* / unknown retire through OoO
                assert core.epi_pj == 900

    def test_dyad_phases_conserve(self, cell_snapshots):
        esnap, _ = cell_snapshots
        assert esnap.dyads
        (dup,) = [d for d in esnap.dyads if d.design == "duplexity"]
        for dyad in esnap.dyads:
            assert dyad.conserved()
            assert sum(dyad.phases_pj.values()) == dyad.total_pj
            assert dyad.total_pj == dyad.static_pj + sum(
                dyad.dynamic_pj.values()
            )
        assert dup.cycles > 0
        assert dup.total_pj > 0

    def test_mg1_waterfalls_join_the_run(self, cell_snapshots):
        esnap, _ = cell_snapshots
        assert esnap.waterfalls
        for w in esnap.waterfalls:
            assert w.conserved()
            assert w.total_static_pj == round(
                w.static_w * w.duration_s * 1e12
            )
            assert set(w.shares_pj) == set(WATERFALL_SHARES)
            assert all(v >= 0 for v in w.shares_pj.values())
            assert w.rate > 0 and w.requests > 0
            assert w.static_per_request_pj > 0

    def test_validator_passes_the_real_snapshot(self, cell_snapshots):
        esnap, _ = cell_snapshots
        assert validate.check(esnap) == []
        assert esnap.conserved()

    def test_render_report(self, cell_snapshots):
        esnap, psnap = cell_snapshots
        text = render_energy_report(esnap, psnap)
        assert "conservation: sum(shares) == static + dynamic [exact]" in text
        assert "VIOLATED" not in text
        assert "static-energy waterfalls" in text
        assert "request energy exemplars" in text
        # Empty snapshots render without crashing.
        assert render_energy_report(EnergySnapshot()) is not None


class TestValidatorCatchesTampering:
    def test_tampered_core_total(self, cell_snapshots):
        esnap, _ = cell_snapshots
        bad_core = dataclasses.replace(
            esnap.cores[0], total_pj=esnap.cores[0].total_pj + 1
        )
        bad = dataclasses.replace(esnap, cores=(bad_core,), dyads=(),
                                  waterfalls=(), cluster_runs=())
        violations = validate.check(bad)
        assert violations
        assert all(v.invariant.startswith("energy-") for v in violations)

    def test_tampered_waterfall(self, cell_snapshots):
        esnap, _ = cell_snapshots
        w = esnap.waterfalls[0]
        bad_w = dataclasses.replace(w, total_static_pj=w.total_static_pj + 7)
        bad = dataclasses.replace(esnap, cores=(), dyads=(),
                                  waterfalls=(bad_w,), cluster_runs=())
        assert validate.check(bad)

    def test_bad_cluster_fraction(self):
        energy.enable()
        energy.record_cluster_run(
            design="duplexity", workload="W", load=0.5, servers=4,
            requests=100, duration_s=1.0, total_j=10.0,
            energy_per_request_j=0.1, requests_per_joule=10.0,
            wasted_static_fraction=1.5,  # impossible
            server_energy_min_j=2.0, server_energy_mean_j=2.5,
            server_energy_max_j=3.0,
        )
        with validate.collecting() as found:
            energy.snapshot()
        assert any(v.invariant == "energy-wasted-range" for v in found)


class TestWaterfallRecording:
    def test_shares_split_busy_idle(self):
        energy.enable()
        with prof.context(design="baseline", workload="W"):
            energy.record_mg1_run(
                rate=1e5, requests=100, busy_s=0.25, duration_s=1.0
            )
        (w,) = energy.snapshot().waterfalls
        static_w = core_power_model("baseline").static_w
        assert w.total_static_pj == round(static_w * 1e12)
        assert w.conserved()
        assert w.shares_pj["morph_penalty"] == 0
        # 25/75 split of a pure busy/idle window (integer grid, so up
        # to one pJ of largest-remainder rounding).
        assert w.shares_pj["service"] == pytest.approx(
            0.25 * w.total_static_pj, abs=1
        )
        assert w.shares_pj["idle"] == pytest.approx(
            0.75 * w.total_static_pj, abs=1
        )

    def test_penalty_share_carved_from_busy(self):
        energy.enable()
        penalized = np.array([1, 0, 1, 1], dtype=np.uint8)
        with prof.context(design="duplexity", workload="W"):
            energy.record_mg1_run(
                rate=1e5, requests=4, busy_s=0.5, duration_s=1.0,
                penalized=penalized, penalty=0.05,
            )
        (w,) = energy.snapshot().waterfalls
        assert w.penalty_s == pytest.approx(0.15)
        assert w.shares_pj["morph_penalty"] > 0
        assert w.conserved()

    def test_degenerate_window_parks_residual_in_idle(self):
        # A window measured as zero picoseconds still conserves: the
        # whole (rounded) static budget lands in idle.
        energy.enable()
        with prof.context(design="duplexity", workload="W"):
            energy.record_mg1_run(
                rate=1e5, requests=1, busy_s=0.0, duration_s=4e-13
            )
        (w,) = energy.snapshot().waterfalls
        assert w.conserved()
        assert sum(w.shares_pj.values()) == w.total_static_pj

    def test_unknown_design_is_dropped_not_guessed(self):
        energy.enable()
        with prof.context(design="vliw", workload="W"):
            energy.record_mg1_run(
                rate=1e5, requests=10, busy_s=0.5, duration_s=1.0
            )
        snap = energy.snapshot()
        assert not snap.waterfalls
        assert snap.dropped.get("waterfalls_unmodeled") == 1

    def test_zero_requests_records_nothing(self):
        energy.enable()
        with prof.context(design="baseline", workload="W"):
            energy.record_mg1_run(
                rate=1e5, requests=0, busy_s=0.5, duration_s=1.0
            )
        assert not energy.snapshot().waterfalls

    def test_cap_counts_drops(self):
        energy.enable()
        with prof.context(design="baseline", workload="W"):
            for _ in range(WATERFALL_CAP + 5):
                energy.record_mg1_run(
                    rate=1e5, requests=1, busy_s=0.5, duration_s=1.0
                )
        snap = energy.snapshot()
        assert len(snap.waterfalls) == WATERFALL_CAP
        assert snap.dropped["waterfalls"] == 5


class TestClusterRecords:
    def test_burn_rate_against_budget(self):
        energy.enable()
        energy.set_budget(2e-4)
        energy.record_cluster_run(
            design="duplexity", workload="W", load=0.5, servers=4,
            requests=1000, duration_s=1.0, total_j=0.17,
            energy_per_request_j=1.7e-4, requests_per_joule=5882.0,
            wasted_static_fraction=0.2,
            server_energy_min_j=0.04, server_energy_mean_j=0.0425,
            server_energy_max_j=0.045,
        )
        (run,) = energy.snapshot().cluster_runs
        assert run.budget_j == 2e-4
        assert run.burn_rate == pytest.approx(1.7e-4 / 2e-4)

    def test_no_budget_no_burn(self):
        energy.enable()
        energy.record_cluster_run(
            design="duplexity", workload="W", load=0.5, servers=4,
            requests=1000, duration_s=1.0, total_j=0.17,
            energy_per_request_j=1.7e-4, requests_per_joule=5882.0,
            wasted_static_fraction=0.2,
            server_energy_min_j=0.04, server_energy_mean_j=0.0425,
            server_energy_max_j=0.045,
        )
        (run,) = energy.snapshot().cluster_runs
        assert run.budget_j is None and run.burn_rate is None

    def test_cap_counts_drops(self):
        energy.enable()
        for _ in range(CLUSTER_RUN_CAP + 3):
            energy.record_cluster_run(
                design="d", workload="W", load=0.5, servers=1, requests=1,
                duration_s=1.0, total_j=1.0, energy_per_request_j=1.0,
                requests_per_joule=1.0, wasted_static_fraction=0.0,
                server_energy_min_j=1.0, server_energy_mean_j=1.0,
                server_energy_max_j=1.0,
            )
        assert energy.live_totals()["cluster_runs"] == CLUSTER_RUN_CAP
        assert energy.snapshot().dropped["cluster_runs"] == 3


class TestWorkerDeltas:
    def _one_waterfall(self):
        with prof.context(design="baseline", workload="W"):
            energy.record_mg1_run(
                rate=1e5, requests=10, busy_s=0.5, duration_s=1.0
            )

    def test_mark_delta_merge_round_trip(self):
        energy.enable()
        self._one_waterfall()
        before = energy.mark()
        self._one_waterfall()
        delta = energy.delta_since(before)
        assert len(delta.waterfalls) == 1
        assert not delta.empty
        # A second process would merge this delta on top of its own
        # stream; merging locally must reproduce append exactly.
        restored = pickle.loads(pickle.dumps(delta))
        energy.merge_delta(restored)
        snap = energy.snapshot()
        assert len(snap.waterfalls) == 3
        assert snap.waterfalls[2] == snap.waterfalls[1]

    def test_merge_is_noop_when_disabled(self):
        energy.enable()
        self._one_waterfall()
        delta = energy.delta_since(energy.EnergyMark(0, 0, {}))
        energy.reset()
        energy.merge_delta(delta)
        assert energy.snapshot().empty

    def test_worker_config_round_trip(self):
        energy.enable()
        energy.set_budget(3e-4)
        config = energy.config_for_worker()
        # Simulate a fresh pool worker with stale local state.
        energy.reset()
        energy.enable()
        self._one_waterfall()
        energy.configure_worker(config)
        assert energy.is_enabled()
        assert prof.is_enabled()
        assert energy.budget_j() == 3e-4
        assert energy.snapshot().empty  # reset-first: no stale records

    def test_disabled_parent_config_keeps_worker_off(self):
        config = energy.config_for_worker()
        energy.configure_worker(config)
        assert not energy.is_enabled()

    def test_pooled_sweep_matches_serial(self, fresh_caches):
        cache.configure(enabled=False)
        grid = dict(
            designs=["baseline", "duplexity"],
            loads=(0.3, 0.7),
            fidelity=TINY,
            workloads=[mcrouter()],
        )
        energy.enable()
        serial_results = run_grid(workers=1, **grid)
        serial = energy.snapshot()
        assert not serial.empty

        energy.reset()
        prof.reset()
        clear_cache()
        clear_tail_cache()
        energy.enable()
        pooled_results = run_grid(workers=2, **grid)
        pooled = energy.snapshot()

        assert pooled_results == serial_results
        assert pooled == serial  # cores, dyads, waterfalls, drops


class TestNonInterference:
    def test_golden_payload_byte_identical_with_energy(self, fresh_caches):
        from tests.golden import build_payload

        plain = json.dumps(build_payload(), sort_keys=True)
        clear_cache()
        clear_tail_cache()
        cache.configure(enabled=False)
        energy.enable()
        energized = json.dumps(build_payload(), sort_keys=True)
        assert energized == plain

    def test_stats_surface_energy_counters(self):
        energy.enable()
        with prof.context(design="baseline", workload="W"):
            energy.record_mg1_run(
                rate=1e5, requests=10, busy_s=0.5, duration_s=1.0
            )
        text = format_grid_stats(GridRunStats())
        assert "energy.waterfalls" in text
        energy.disable()
        assert "energy." not in format_grid_stats(GridRunStats())


class TestMetricsDegenerate:
    def test_energy_summary_none_for_unknown_design(self):
        from repro.cluster.metrics import energy_summary

        # No power row: the summary is None, never a silent zero —
        # the ValueError short-circuits before the measurement or the
        # result are touched.
        assert energy_summary("vliw", None, None, 0.5, None) is None

    def test_none_power_renders_as_dash(self):
        from repro.harness.reporting import _fmt

        assert _fmt(None) == "-"
        assert _fmt(0.0) == "0"
        table = format_table(["power (W)"], [[None]])
        assert "-" in table.splitlines()[-1]


class TestCli:
    @pytest.fixture
    def tiny_cli(self):
        import repro.cli as cli

        original = cli.FIDELITIES["fast"]
        cli.FIDELITIES["fast"] = TINY
        yield
        cli.FIDELITIES["fast"] = original

    def test_energy_target_renders(self, tiny_cli, fresh_caches, capsys):
        assert main(["energy", "duplexity", "mcrouter", "0.5"]) == 0
        assert not energy.is_enabled()  # torn down by the CLI
        assert not prof.is_enabled()
        out = capsys.readouterr().out
        assert "conservation: sum(shares) == static + dynamic [exact]" in out
        assert "VIOLATED" not in out
        assert "dyad duplexity" in out
        assert "static-energy waterfalls" in out

    def test_energy_target_exports_trace_and_manifest(
        self, tiny_cli, fresh_caches, tmp_path, capsys
    ):
        trace_file = tmp_path / "e.jsonl"
        assert (
            main(
                [
                    "energy", "duplexity", "mcrouter", "0.5",
                    "--trace", str(trace_file),
                ]
            )
            == 0
        )
        records = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        energy_records = [r for r in records if r["type"] == "energy"]
        kinds = {r["kind"] for r in energy_records}
        assert {"core", "dyad", "waterfall"} <= kinds
        for r in energy_records:
            if r["kind"] == "core":
                assert r["conserved"] is True
                assert sum(r["shares_pj"].values()) == r["total_pj"]
        manifest = json.loads(
            (tmp_path / "e.manifest.json").read_text()
        )
        power = manifest["power"]
        assert power["design"] == "duplexity"
        assert power["core"]["static_w"] == pytest.approx(
            core_power_model("duplexity").static_w
        )
        assert power["lender"]["epi_ooo_nj"] == pytest.approx(0.45)
        assert power["static_w_per_mm2"] == 0.25
        capsys.readouterr()
        assert main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert 'repro_energy_record_count{kind="core"}' in out
        assert "# power: design=duplexity" in out

    def test_energy_env_variable_on_cell_target(
        self, tiny_cli, fresh_caches, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ENERGY", "1")
        assert main(["cell", "baseline", "mcrouter", "0.5"]) == 0
        assert not energy.is_enabled()
        assert not prof.is_enabled()

    def test_energy_rejects_bad_args(self):
        with pytest.raises(SystemExit, match="usage: repro energy"):
            main(["energy", "duplexity"])

    def test_cluster_energy_flag(
        self, tiny_cli, fresh_caches, tmp_path, capsys
    ):
        trace_file = tmp_path / "c.jsonl"
        assert (
            main(
                [
                    "cluster", "duplexity", "mcrouter", "0.5",
                    "--servers", "2", "--energy-budget", "500",
                    "--trace", str(trace_file),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cluster energy" in out
        assert "wasted_static" in out
        records = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        cluster_energy = [
            r
            for r in records
            if r["type"] == "energy" and r["kind"] == "cluster"
        ]
        assert len(cluster_energy) == 1
        rec = cluster_energy[0]
        assert rec["budget_j"] == pytest.approx(500e-6)
        assert rec["burn_rate"] == pytest.approx(
            rec["energy_per_request_j"] / 500e-6
        )
        assert 0.0 <= rec["wasted_static_fraction"] <= 1.0
        # Post-run manifest patch: the realized cluster power.
        manifest = json.loads((tmp_path / "c.manifest.json").read_text())
        assert manifest["total_power_w"] > 0
        assert manifest["power"]["design"] == "duplexity"
