"""Batched M/G/1 fast path vs the scalar reference loop.

The batched ``_run`` pre-draws service times in bulk (on the exact same
generator stream the scalar loop would consume) and runs the Lindley
recurrence in the compiled kernel.  Its contract is bit identity: every
``QueueResult`` field — wait/service arrays, idle periods, busy time,
window duration — must equal the scalar loop's, for every eligible
service model, and ineligible models must fall back without perturbing
the stream.
"""

import dataclasses

import numpy as np
import pytest

from repro import prof
from repro.common.distributions import (
    Deterministic,
    Exponential,
    LogNormal,
    Mixture,
    Pareto,
    ScaledDistribution,
    SumDistribution,
    Uniform,
    draws_per_sample,
    is_stream_safe,
)
from repro.harness.metrics import DesignServiceModel
from repro.queueing.mg1 import (
    DistributionService,
    MG1Simulator,
    RestartPenaltyService,
)
from repro.uarch import fastpath
from repro.workloads import microservices as ms

pytestmark = pytest.mark.skipif(
    not fastpath.is_available(), reason="no C compiler for the fastpath kernel"
)


@pytest.fixture(autouse=True)
def _restore_mode():
    yield
    fastpath.set_mode(None)


def run_both(make_sim, n, warmup):
    fastpath.set_mode("off")
    ref = make_sim().run(n, warmup)
    fastpath.set_mode("on")
    fast = make_sim().run(n, warmup)
    return ref, fast


def assert_identical(ref, fast):
    assert np.array_equal(ref.wait_times, fast.wait_times)
    assert np.array_equal(ref.service_times, fast.service_times)
    assert np.array_equal(ref.idle_periods, fast.idle_periods)
    assert ref.wait_times.dtype == fast.wait_times.dtype
    assert ref.idle_periods.dtype == fast.idle_periods.dtype
    assert ref.busy_time == fast.busy_time
    assert ref.duration == fast.duration
    assert ref.arrival_rate == fast.arrival_rate


SERVICES = {
    "exponential": lambda: Exponential(2e-6),
    "uniform": lambda: Uniform(1e-6, 4e-6),
    "lognormal": lambda: LogNormal(3e-6, 1.5),
    "pareto": lambda: Pareto(2e-6, 2.5),
    "deterministic": lambda: Deterministic(2e-6),
    "scaled-lognormal": lambda: ScaledDistribution(LogNormal(2e-6, 1.0), 1.7),
}


@pytest.mark.parametrize("name", sorted(SERVICES))
@pytest.mark.parametrize("seed", [0, 3, 12345])
def test_distribution_service_identical(name, seed):
    dist = SERVICES[name]()
    ref, fast = run_both(
        lambda: MG1Simulator.at_load(0.7, dist, seed=seed), 20_000, 2_000
    )
    assert_identical(ref, fast)


@pytest.mark.parametrize("penalty", [0.0, 5e-7])
@pytest.mark.parametrize("seed", [0, 5])
def test_restart_penalty_identical(penalty, seed):
    """Idle-triggered restart penalties are applied inside the compiled
    recurrence at the exact point the scalar loop applies them."""
    ref, fast = run_both(
        lambda: MG1Simulator.at_load(
            0.6, RestartPenaltyService(Exponential(2e-6), penalty), seed=seed
        ),
        20_000,
        2_000,
    )
    assert_identical(ref, fast)
    # Low load => idle periods exist, so penalties actually fired.
    assert ref.idle_periods.size > 0


@pytest.mark.parametrize(
    "workload,eligible",
    [
        ("wordstem", True),  # single LogNormal phase, no stall draw
        ("flann_ha", False),  # compute + stall draws interleave per request
        ("rsc", False),
        ("mcrouter", False),
    ],
)
def test_design_service_model(workload, eligible):
    service = DesignServiceModel(
        getattr(ms, workload)(),
        slowdown=1.3,
        per_stall_penalty_s=1e-8,
        start_penalty_s=3e-8,
    )
    rng = np.random.default_rng(0)
    state_before = rng.bit_generator.state
    decomposed = service.batch_base(rng, 16)
    if eligible:
        assert decomposed is not None
    else:
        # Ineligible: returns None with the generator untouched.
        assert decomposed is None
        assert rng.bit_generator.state == state_before
    ref, fast = run_both(
        lambda: MG1Simulator.at_load(0.7, service, seed=11), 20_000, 2_000
    )
    assert_identical(ref, fast)


def test_design_multiphase_with_deterministic_terms():
    """Constant phases (Deterministic compute/stall) consume no draws, so
    a multi-phase workload with exactly one random term stays eligible;
    the constant terms fold into the base in the scalar loop's addition
    order."""
    workload = ms.Microservice(
        name="synthetic",
        phases=(
            ms.Phase(Deterministic(2.0), Deterministic(1.5)),
            ms.Phase(LogNormal(4.0, 0.3), None),
            ms.Phase(Deterministic(0.5), None),
        ),
        profile=ms.wordstem().profile,
    )
    service = DesignServiceModel(
        workload, slowdown=1.2, per_stall_penalty_s=1e-8, start_penalty_s=3e-8
    )
    assert service.batch_base(np.random.default_rng(0), 8) is not None
    ref, fast = run_both(
        lambda: MG1Simulator.at_load(0.6, service, seed=21), 20_000, 2_000
    )
    assert_identical(ref, fast)


def test_batch_base_consumes_stream_exactly():
    """On success, batch_base advances the generator exactly as n
    sequential service_time calls would."""
    for service in (
        DistributionService(LogNormal(2e-6, 1.0)),
        RestartPenaltyService(Exponential(2e-6), 5e-7),
        DesignServiceModel(ms.wordstem(), 1.3, start_penalty_s=3e-8),
    ):
        r1, r2 = np.random.default_rng(9), np.random.default_rng(9)
        service.batch_base(r1, 777)
        for _ in range(777):
            service.service_time(r2, 0.0)
        assert r1.bit_generator.state == r2.bit_generator.state


@pytest.mark.parametrize(
    "dist_name",
    ["exponential", "uniform", "lognormal", "pareto", "scaled-lognormal"],
)
def test_stream_safety_empirical(dist_name):
    """The whitelist's defining property, asserted directly: bulk fills
    produce the same values and leave the generator in the same state as
    sequential scalar draws."""
    dist = SERVICES[dist_name]()
    assert is_stream_safe(dist)
    r1, r2 = np.random.default_rng(42), np.random.default_rng(42)
    bulk = dist.sample_many(r1, 500)
    seq = np.array([dist.sample(r2) for _ in range(500)])
    assert np.array_equal(bulk, seq)
    assert r1.bit_generator.state == r2.bit_generator.state


def test_stream_unsafe_compositions_excluded():
    combo = SumDistribution((Exponential(1e-6), Uniform(1e-6, 2e-6)))
    mix = Mixture((Exponential(1e-6), Exponential(3e-6)), (0.5, 0.5))
    assert not is_stream_safe(combo)
    assert not is_stream_safe(mix)
    # ...and simulations over them still agree (both legs scalar).
    for service in (combo, mix):
        ref, fast = run_both(
            lambda: MG1Simulator.at_load(0.5, service, seed=2), 5_000, 500
        )
        assert_identical(ref, fast)


def test_draws_per_sample():
    assert draws_per_sample(Deterministic(1e-6)) == 0
    assert draws_per_sample(ScaledDistribution(Deterministic(1e-6), 2.0)) == 0
    assert draws_per_sample(Exponential(1e-6)) == 1
    assert draws_per_sample(ScaledDistribution(LogNormal(1e-6, 1.0), 2.0)) == 1


@pytest.mark.parametrize(
    "n,warmup",
    [(1, 0), (2, 1), (100, 99), (100, 0), (20_000, 19_999)],
    ids=["single", "pair", "all-warmup", "no-warmup", "one-retained"],
)
def test_window_edge_cases_identical(n, warmup):
    ref, fast = run_both(
        lambda: MG1Simulator.at_load(0.7, Exponential(2e-6), seed=3), n, warmup
    )
    assert_identical(ref, fast)


class TestIdlePeriodWindowAgreement:
    """Idle-period retention (`n > warmup`) at the smallest windows,
    where an off-by-one in either path would surface first."""

    @pytest.mark.parametrize("warmup", [0, 1])
    def test_minimal_warmup_idles_identical(self, warmup):
        ref, fast = run_both(
            lambda: MG1Simulator.at_load(0.3, Exponential(2e-6), seed=7),
            5_000,
            warmup,
        )
        assert_identical(ref, fast)
        # Low load: the window genuinely contains idle periods, so the
        # retention rule was exercised, not vacuously satisfied.
        assert ref.idle_periods.size > 0
        # Arrival `warmup` itself is excluded (strict `n > warmup`), so
        # at most one idle period per retained arrival after it.
        assert ref.idle_periods.size <= 5_000 - warmup - 1

    def test_first_retained_arrival_hits_idle_server(self):
        """A window whose first retained arrival finds the server idle:
        its wait is zero and the idle gap before it must be dropped by
        both paths (it belongs to arrival `warmup`, not `warmup + 1`)."""
        warmup = 50
        ref, fast = run_both(
            lambda: MG1Simulator.at_load(0.05, Exponential(2e-6), seed=1),
            2_000,
            warmup,
        )
        assert_identical(ref, fast)
        # rho = 0.05 => the first retained arrival found an empty queue.
        assert ref.wait_times[0] == 0.0
        assert ref.idle_periods.size > 0


def test_profiled_run_identical():
    """prof.record_mg1_run sees identical waits/services/penalized arrays
    from either path: full snapshot equality."""

    def snap_for(mode):
        fastpath.set_mode(mode)
        prof.reset()
        prof.enable()
        try:
            MG1Simulator.at_load(
                0.6, RestartPenaltyService(Exponential(2e-6), 5e-7), seed=5
            ).run(20_000, 2_000)
            return dataclasses.asdict(prof.snapshot())
        finally:
            prof.disable()
            prof.reset()

    assert snap_for("off") == snap_for("on")


def test_negative_service_raises_either_way():
    class NegativeService:
        def service_time(self, rng, idle_before):
            return -1.0

        def mean_service_time(self):
            return 1e-6

        def batch_base(self, rng, n):
            return np.full(n, -1.0), 0.0, False

    for mode in ("off", "on"):
        fastpath.set_mode(mode)
        sim = MG1Simulator(arrival_rate=1e5, service=NegativeService(), seed=0)
        with pytest.raises(ValueError, match="negative"):
            sim.run(100)


def test_off_mode_never_batches():
    """REPRO_FASTPATH=off must not even construct the batched path."""
    called = []

    class SpyService:
        def service_time(self, rng, idle_before):
            return 2e-6

        def mean_service_time(self):
            return 2e-6

        def batch_base(self, rng, n):
            called.append(n)
            return np.full(n, 2e-6), 0.0, False

    fastpath.set_mode("off")
    MG1Simulator.at_load(0.7, SpyService(), seed=3).run(1_000, 100)
    assert not called
    fastpath.set_mode("on")
    MG1Simulator.at_load(0.7, SpyService(), seed=3).run(1_000, 100)
    assert called == [1_000]
