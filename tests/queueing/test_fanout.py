"""Synchronous fan-out wait modelling (tail at scale)."""

import numpy as np
import pytest

from repro.common.distributions import Deterministic, Exponential
from repro.queueing.fanout import (
    _MEAN_CHUNK_DRAWS,
    _MEAN_MAX_SAMPLES,
    FanOutMax,
    expected_max_exponential,
    fanout_for_leaf_budget,
    harmonic,
    tail_amplification,
)


class TestHarmonic:
    def test_values(self):
        assert harmonic(1) == 1.0
        assert harmonic(2) == 1.5
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_zero(self):
        assert harmonic(0) == 0.0

    def test_negative(self):
        with pytest.raises(ValueError):
            harmonic(-1)


class TestExpectedMax:
    def test_single_leaf_is_mean(self):
        assert expected_max_exponential(3.0, 1) == 3.0

    def test_hundred_leaves(self):
        # McRouter fans out to 100 leaves: E[max] ~ mean * H_100 ~ 5.19x.
        assert expected_max_exponential(1.0, 100) == pytest.approx(5.187, abs=0.01)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(2.0, size=(40_000, 8)).max(axis=1)
        assert expected_max_exponential(2.0, 8) == pytest.approx(
            samples.mean(), rel=0.03
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_max_exponential(0.0, 4)
        with pytest.raises(ValueError):
            expected_max_exponential(1.0, 0)


class TestFanOutMax:
    def test_deterministic_leaves(self):
        d = FanOutMax(Deterministic(2.0), fanout=16)
        assert d.sample(np.random.default_rng(0)) == 2.0
        assert d.mean() == pytest.approx(2.0)

    def test_sample_many_shape(self):
        d = FanOutMax(Exponential(1.0), fanout=4)
        samples = d.sample_many(np.random.default_rng(1), 500)
        assert samples.shape == (500,)
        assert (samples > 0).all()

    def test_mean_grows_with_fanout(self):
        small = FanOutMax(Exponential(1.0), fanout=2).mean()
        large = FanOutMax(Exponential(1.0), fanout=64).mean()
        assert large > 2 * small

    def test_mean_matches_closed_form(self):
        d = FanOutMax(Exponential(1.0), fanout=8)
        assert d.mean() == pytest.approx(expected_max_exponential(1.0, 8), rel=0.1)

    def test_max_dominates_single_draw(self):
        rng = np.random.default_rng(2)
        d = FanOutMax(Exponential(1.0), fanout=32)
        singles = Exponential(1.0).sample_many(rng, 5000).mean()
        maxes = d.sample_many(rng, 5000).mean()
        assert maxes > 2.5 * singles

    def test_validation(self):
        with pytest.raises(ValueError):
            FanOutMax(Exponential(1.0), fanout=0)


class _CountingExponential(Exponential):
    """Exponential leaf that records how sample_many is used."""

    def __init__(self, mean: float):
        super().__init__(mean)
        self.calls = 0
        self.draws_requested = 0

    def sample_many(self, rng, n):
        self.calls += 1
        self.draws_requested += n
        return super().sample_many(rng, n)


class TestFanOutMeanCaching:
    """Regression: mean() was re-estimated by Monte Carlo on every call
    (it sits under mean_service_time() in hot load->rate conversions)
    and its fixed draw cap left ~327 max-samples at fan-out >= 100."""

    def test_mean_computed_once_per_instance(self):
        leaf = _CountingExponential(1.0)
        d = FanOutMax(leaf, fanout=8)
        first = d.mean()
        calls_after_first = leaf.calls
        for _ in range(50):
            assert d.mean() == first
        assert leaf.calls == calls_after_first == 1

    def test_draw_budget_scales_with_fanout(self):
        leaf = _CountingExponential(1.0)
        FanOutMax(leaf, fanout=100).mean()
        # Pre-fix the cap was 4096 * 8 = 32768 total draws (~327
        # max-samples at fan-out 100); the budget must now provide
        # thousands of max-samples regardless of fan-out.
        assert leaf.draws_requested >= 1000 * 100

    def test_mean_deterministic_across_instances(self):
        a = FanOutMax(Exponential(1.0), fanout=32).mean()
        b = FanOutMax(Exponential(1.0), fanout=32).mean()
        assert a == b

    def test_high_fanout_mean_close_to_closed_form(self):
        est = FanOutMax(Exponential(1.0), fanout=100).mean()
        assert est == pytest.approx(expected_max_exponential(1.0, 100), rel=0.02)


class TestTailAmplification:
    def test_p99_at_fanout_100(self):
        # The tail-at-scale headline: ~63% of fan-out-100 requests see at
        # least one leaf exceed its own p99.
        assert tail_amplification(0.99, 100) == pytest.approx(0.634, abs=0.01)

    def test_single_leaf(self):
        assert tail_amplification(0.99, 1) == pytest.approx(0.01)

    def test_budget_inverse(self):
        fanout = fanout_for_leaf_budget(0.99, 0.10)
        assert tail_amplification(0.99, fanout) <= 0.10
        assert tail_amplification(0.99, fanout + 2) > 0.10

    def test_validation(self):
        with pytest.raises(ValueError):
            tail_amplification(1.5, 4)
        with pytest.raises(ValueError):
            tail_amplification(0.9, 0)
        with pytest.raises(ValueError):
            fanout_for_leaf_budget(1.0, 0.1)


class TestFanoutBudgetExactBoundaries:
    """Regression: ``int()`` truncated a float ratio that can land one
    ulp below an exact integer, returning n-1 when ``1 - q**n == target``
    exactly."""

    @pytest.mark.parametrize(
        "quantile", [0.3, 0.5, 0.9, 0.95, 0.99, 0.999, 0.9999]
    )
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 10, 50, 100, 1000])
    def test_exact_boundary_returns_n(self, quantile, n):
        # Construct the target to sit exactly on the fan-out-n boundary:
        # the float 1 - q**n.  The budget at that target is exactly n.
        target = tail_amplification(quantile, n)
        if not 0 < target < 1:
            pytest.skip("target underflowed out of the open interval")
        assert fanout_for_leaf_budget(quantile, target) == n

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_budget_is_largest_feasible(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(200):
            quantile = float(rng.uniform(0.05, 0.9999))
            target = float(rng.uniform(1e-6, 0.999))
            fanout = fanout_for_leaf_budget(quantile, target)
            assert fanout >= 1
            if tail_amplification(quantile, 1) <= target:
                # Not clamped: the result meets the budget and is maximal.
                assert tail_amplification(quantile, fanout) <= target
                assert tail_amplification(quantile, fanout + 1) > target


class TestChunkedMeanEstimate:
    """Regression: the Monte-Carlo mean materialized ``4096 * fanout``
    draws in one buffer (~320 MB at fan-out 10k); the accumulation is now
    chunked with the estimate bit-identical (same seed, same draw order)."""

    # Smallest fan-outs that overflow one chunk: chunking engages above
    # _MEAN_CHUNK_DRAWS / _MEAN_MAX_SAMPLES = 256 leaves.
    @pytest.mark.parametrize("fanout", [300, 1000])
    def test_bit_identical_to_single_bulk_fill(self, fanout):
        rng = np.random.default_rng(0xFA)
        draws = Exponential(1.0).sample_many(rng, _MEAN_MAX_SAMPLES * fanout)
        bulk = float(
            draws.reshape(_MEAN_MAX_SAMPLES, fanout).max(axis=1).mean()
        )
        assert FanOutMax(Exponential(1.0), fanout=fanout).mean() == bulk

    def test_per_call_draws_bounded(self, monkeypatch):
        calls = []
        original = Exponential.sample_many

        def spy(self, rng, n):
            calls.append(n)
            return original(self, rng, n)

        # Patch the class, not an instance: is_stream_safe checks exact
        # types, and the chunked path only serves stream-safe leaves.
        monkeypatch.setattr(Exponential, "sample_many", spy)
        FanOutMax(Exponential(1.0), fanout=10_000).mean()
        assert max(calls) <= _MEAN_CHUNK_DRAWS
        assert sum(calls) == _MEAN_MAX_SAMPLES * 10_000
