"""Synchronous fan-out wait modelling (tail at scale)."""

import numpy as np
import pytest

from repro.common.distributions import Deterministic, Exponential
from repro.queueing.fanout import (
    FanOutMax,
    expected_max_exponential,
    fanout_for_leaf_budget,
    harmonic,
    tail_amplification,
)


class TestHarmonic:
    def test_values(self):
        assert harmonic(1) == 1.0
        assert harmonic(2) == 1.5
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_zero(self):
        assert harmonic(0) == 0.0

    def test_negative(self):
        with pytest.raises(ValueError):
            harmonic(-1)


class TestExpectedMax:
    def test_single_leaf_is_mean(self):
        assert expected_max_exponential(3.0, 1) == 3.0

    def test_hundred_leaves(self):
        # McRouter fans out to 100 leaves: E[max] ~ mean * H_100 ~ 5.19x.
        assert expected_max_exponential(1.0, 100) == pytest.approx(5.187, abs=0.01)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(2.0, size=(40_000, 8)).max(axis=1)
        assert expected_max_exponential(2.0, 8) == pytest.approx(
            samples.mean(), rel=0.03
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_max_exponential(0.0, 4)
        with pytest.raises(ValueError):
            expected_max_exponential(1.0, 0)


class TestFanOutMax:
    def test_deterministic_leaves(self):
        d = FanOutMax(Deterministic(2.0), fanout=16)
        assert d.sample(np.random.default_rng(0)) == 2.0
        assert d.mean() == pytest.approx(2.0)

    def test_sample_many_shape(self):
        d = FanOutMax(Exponential(1.0), fanout=4)
        samples = d.sample_many(np.random.default_rng(1), 500)
        assert samples.shape == (500,)
        assert (samples > 0).all()

    def test_mean_grows_with_fanout(self):
        small = FanOutMax(Exponential(1.0), fanout=2).mean()
        large = FanOutMax(Exponential(1.0), fanout=64).mean()
        assert large > 2 * small

    def test_mean_matches_closed_form(self):
        d = FanOutMax(Exponential(1.0), fanout=8)
        assert d.mean() == pytest.approx(expected_max_exponential(1.0, 8), rel=0.1)

    def test_max_dominates_single_draw(self):
        rng = np.random.default_rng(2)
        d = FanOutMax(Exponential(1.0), fanout=32)
        singles = Exponential(1.0).sample_many(rng, 5000).mean()
        maxes = d.sample_many(rng, 5000).mean()
        assert maxes > 2.5 * singles

    def test_validation(self):
        with pytest.raises(ValueError):
            FanOutMax(Exponential(1.0), fanout=0)


class _CountingExponential(Exponential):
    """Exponential leaf that records how sample_many is used."""

    def __init__(self, mean: float):
        super().__init__(mean)
        self.calls = 0
        self.draws_requested = 0

    def sample_many(self, rng, n):
        self.calls += 1
        self.draws_requested += n
        return super().sample_many(rng, n)


class TestFanOutMeanCaching:
    """Regression: mean() was re-estimated by Monte Carlo on every call
    (it sits under mean_service_time() in hot load->rate conversions)
    and its fixed draw cap left ~327 max-samples at fan-out >= 100."""

    def test_mean_computed_once_per_instance(self):
        leaf = _CountingExponential(1.0)
        d = FanOutMax(leaf, fanout=8)
        first = d.mean()
        calls_after_first = leaf.calls
        for _ in range(50):
            assert d.mean() == first
        assert leaf.calls == calls_after_first == 1

    def test_draw_budget_scales_with_fanout(self):
        leaf = _CountingExponential(1.0)
        FanOutMax(leaf, fanout=100).mean()
        # Pre-fix the cap was 4096 * 8 = 32768 total draws (~327
        # max-samples at fan-out 100); the budget must now provide
        # thousands of max-samples regardless of fan-out.
        assert leaf.draws_requested >= 1000 * 100

    def test_mean_deterministic_across_instances(self):
        a = FanOutMax(Exponential(1.0), fanout=32).mean()
        b = FanOutMax(Exponential(1.0), fanout=32).mean()
        assert a == b

    def test_high_fanout_mean_close_to_closed_form(self):
        est = FanOutMax(Exponential(1.0), fanout=100).mean()
        assert est == pytest.approx(expected_max_exponential(1.0, 100), rel=0.02)


class TestTailAmplification:
    def test_p99_at_fanout_100(self):
        # The tail-at-scale headline: ~63% of fan-out-100 requests see at
        # least one leaf exceed its own p99.
        assert tail_amplification(0.99, 100) == pytest.approx(0.634, abs=0.01)

    def test_single_leaf(self):
        assert tail_amplification(0.99, 1) == pytest.approx(0.01)

    def test_budget_inverse(self):
        fanout = fanout_for_leaf_budget(0.99, 0.10)
        assert tail_amplification(0.99, fanout) <= 0.10
        assert tail_amplification(0.99, fanout + 2) > 0.10

    def test_validation(self):
        with pytest.raises(ValueError):
            tail_amplification(1.5, 4)
        with pytest.raises(ValueError):
            tail_amplification(0.9, 0)
        with pytest.raises(ValueError):
            fanout_for_leaf_budget(1.0, 0.1)
