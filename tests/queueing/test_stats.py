"""Percentile estimation and confidence intervals."""

import numpy as np
import pytest

from repro.queueing.stats import (
    Z_95,
    Estimate,
    batch_means_mean,
    batch_means_percentile,
    min_batch_size,
    percentile,
    simulate_until_converged,
    t_critical_95,
)


class TestPercentile:
    def test_order_statistic(self):
        samples = np.arange(1, 101, dtype=float)
        assert percentile(samples, 0.99) == 99.0

    def test_median(self):
        assert percentile(np.array([1.0, 2.0, 3.0]), 0.5) == 2.0

    def test_extremes(self):
        samples = np.array([5.0, 1.0, 3.0])
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile(np.array([1.0]), 1.5)
        with pytest.raises(ValueError):
            percentile(np.array([]), 0.5)


class TestEstimate:
    def test_relative_error(self):
        e = Estimate(value=10.0, half_width=0.4, batches=20)
        assert e.relative_error == pytest.approx(0.04)
        assert e.converged(0.05)
        assert not e.converged(0.03)

    def test_zero_value(self):
        assert Estimate(0.0, 0.0, 10).relative_error == 0.0
        assert Estimate(0.0, 1.0, 10).relative_error == float("inf")


class TestBatchMeans:
    def test_percentile_ci_narrows_with_samples(self):
        rng = np.random.default_rng(0)
        small = batch_means_percentile(rng.exponential(1.0, 2_000), 0.99)
        large = batch_means_percentile(rng.exponential(1.0, 200_000), 0.99)
        assert large.half_width < small.half_width

    def test_percentile_estimate_close_to_truth(self):
        rng = np.random.default_rng(1)
        samples = rng.exponential(1.0, 400_000)
        est = batch_means_percentile(samples, 0.99)
        assert est.value == pytest.approx(-np.log(0.01), rel=0.05)

    def test_mean_estimate(self):
        rng = np.random.default_rng(2)
        est = batch_means_mean(rng.exponential(2.0, 100_000))
        assert est.value == pytest.approx(2.0, rel=0.05)
        assert est.converged(0.05)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            batch_means_percentile(np.arange(5.0), 0.99, batches=20)
        with pytest.raises(ValueError):
            batch_means_mean(np.arange(30.0), batches=1)


class TestMinBatchSize:
    def test_values(self):
        assert min_batch_size(0.99) == 100
        assert min_batch_size(0.999) == 1000
        assert min_batch_size(0.5) == 2
        assert min_batch_size(0.0) == 1
        assert min_batch_size(1.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            min_batch_size(1.5)


class TestStudentT:
    def test_small_df_wider_than_z(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(3) == pytest.approx(3.182)
        assert t_critical_95(19) == pytest.approx(2.093)
        for df in range(1, 29):
            assert t_critical_95(df) > t_critical_95(df + 1)

    def test_falls_back_to_z_at_30(self):
        assert t_critical_95(30) == Z_95
        assert t_critical_95(1000) == Z_95

    def test_validation(self):
        with pytest.raises(ValueError):
            t_critical_95(0)

    def test_ci_uses_t_quantile(self):
        # 3 equal-size chunks with known means -> verify the half-width
        # is t(2) * stderr, not z * stderr.
        samples = np.concatenate(
            [np.full(10, 1.0), np.full(10, 2.0), np.full(10, 3.0)]
        )
        est = batch_means_mean(samples, batches=3)
        stderr = np.array([1.0, 2.0, 3.0]).std(ddof=1) / np.sqrt(3)
        assert est.value == pytest.approx(2.0)
        assert est.half_width == pytest.approx(t_critical_95(2) * stderr)
        assert est.half_width > Z_95 * stderr


class TestDegenerateTailBatches:
    """Regression: chunks below 1/(1-q) samples turned the per-chunk
    percentile into the chunk max — a biased mean-of-maxima with an
    artificially tight CI."""

    def test_batch_count_reduced_to_honour_min_chunk(self):
        samples = np.random.default_rng(0).exponential(1.0, 4000)
        est = batch_means_percentile(samples, 0.999, batches=20)
        # 4000 samples / min chunk 1000 -> only 4 usable batches.
        assert est.batches == 4

    def test_less_biased_than_mean_of_maxima(self):
        true_p999 = -np.log(0.001)
        rng = np.random.default_rng(0)
        samples = rng.exponential(1.0, 4000)
        est = batch_means_percentile(samples, 0.999, batches=20)
        # The pre-fix estimator: 20 chunks of 200, per-chunk percentile
        # degenerates to the chunk max, z-based CI.
        chunks = np.array_split(samples, 20)
        maxima = np.array([percentile(c, 0.999) for c in chunks])
        old_value = maxima.mean()
        old_half = Z_95 * maxima.std(ddof=1) / np.sqrt(20)
        assert abs(est.value - true_p999) < abs(old_value - true_p999)
        # The old CI was confidently wrong: it excluded the true value.
        assert abs(old_value - true_p999) > old_half
        assert abs(est.value - true_p999) < est.half_width

    def test_batches_param_respected_when_chunks_large_enough(self):
        samples = np.random.default_rng(1).exponential(1.0, 4000)
        est = batch_means_percentile(samples, 0.9, batches=20)
        assert est.batches == 20

    def test_never_below_two_batches(self):
        samples = np.random.default_rng(2).exponential(1.0, 150)
        est = batch_means_percentile(samples, 0.99, batches=10)
        assert est.batches == 2


class TestConvergenceLoop:
    def test_converges_on_stable_stream(self):
        rng = np.random.default_rng(3)

        def run_segment(i):
            return rng.exponential(1.0, 20_000)

        est, samples = simulate_until_converged(
            run_segment, lambda s: s, q=0.99, target_relative_error=0.05
        )
        assert est.converged(0.05)
        assert samples.size >= 4 * 20_000

    def test_respects_max_segments(self):
        rng = np.random.default_rng(4)

        def noisy_segment(i):
            # Heavy-tailed: hard to converge quickly with few samples.
            return rng.pareto(1.5, 50) + 1.0

        est, _ = simulate_until_converged(
            noisy_segment,
            lambda s: s,
            target_relative_error=0.001,
            max_segments=6,
        )
        assert est.batches <= 6
