"""Percentile estimation and confidence intervals."""

import numpy as np
import pytest

from repro.queueing.stats import (
    Estimate,
    batch_means_mean,
    batch_means_percentile,
    percentile,
    simulate_until_converged,
)


class TestPercentile:
    def test_order_statistic(self):
        samples = np.arange(1, 101, dtype=float)
        assert percentile(samples, 0.99) == 99.0

    def test_median(self):
        assert percentile(np.array([1.0, 2.0, 3.0]), 0.5) == 2.0

    def test_extremes(self):
        samples = np.array([5.0, 1.0, 3.0])
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile(np.array([1.0]), 1.5)
        with pytest.raises(ValueError):
            percentile(np.array([]), 0.5)


class TestEstimate:
    def test_relative_error(self):
        e = Estimate(value=10.0, half_width=0.4, batches=20)
        assert e.relative_error == pytest.approx(0.04)
        assert e.converged(0.05)
        assert not e.converged(0.03)

    def test_zero_value(self):
        assert Estimate(0.0, 0.0, 10).relative_error == 0.0
        assert Estimate(0.0, 1.0, 10).relative_error == float("inf")


class TestBatchMeans:
    def test_percentile_ci_narrows_with_samples(self):
        rng = np.random.default_rng(0)
        small = batch_means_percentile(rng.exponential(1.0, 2_000), 0.99)
        large = batch_means_percentile(rng.exponential(1.0, 200_000), 0.99)
        assert large.half_width < small.half_width

    def test_percentile_estimate_close_to_truth(self):
        rng = np.random.default_rng(1)
        samples = rng.exponential(1.0, 400_000)
        est = batch_means_percentile(samples, 0.99)
        assert est.value == pytest.approx(-np.log(0.01), rel=0.05)

    def test_mean_estimate(self):
        rng = np.random.default_rng(2)
        est = batch_means_mean(rng.exponential(2.0, 100_000))
        assert est.value == pytest.approx(2.0, rel=0.05)
        assert est.converged(0.05)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            batch_means_percentile(np.arange(5.0), 0.99, batches=20)
        with pytest.raises(ValueError):
            batch_means_mean(np.arange(30.0), batches=1)


class TestConvergenceLoop:
    def test_converges_on_stable_stream(self):
        rng = np.random.default_rng(3)

        def run_segment(i):
            return rng.exponential(1.0, 20_000)

        est, samples = simulate_until_converged(
            run_segment, lambda s: s, q=0.99, target_relative_error=0.05
        )
        assert est.converged(0.05)
        assert samples.size >= 4 * 20_000

    def test_respects_max_segments(self):
        rng = np.random.default_rng(4)

        def noisy_segment(i):
            # Heavy-tailed: hard to converge quickly with few samples.
            return rng.pareto(1.5, 50) + 1.0

        est, _ = simulate_until_converged(
            noisy_segment,
            lambda s: s,
            target_relative_error=0.001,
            max_segments=6,
        )
        assert est.batches <= 6
