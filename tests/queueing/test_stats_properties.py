"""Property-based (seeded fuzz) tests for percentile statistics.

Hypothesis is an optional dev dependency and may be absent in minimal
environments, so these properties are exercised with seeded numpy
fuzzing: deterministic, reproducible draws over a wide case space.
"""

import math

import numpy as np
import pytest

from repro.harness.metrics import tail_latency_s
from repro.queueing.stats import (
    batch_means_mean,
    batch_means_percentile,
    percentile,
)

FUZZ_SEEDS = list(range(25))


def _random_samples(rng: np.random.Generator) -> np.ndarray:
    n = int(rng.integers(1, 400))
    kind = rng.integers(0, 3)
    if kind == 0:
        return rng.exponential(scale=float(rng.uniform(0.1, 10.0)), size=n)
    if kind == 1:
        return rng.lognormal(mean=0.0, sigma=1.5, size=n)
    return rng.uniform(0.0, float(rng.uniform(0.5, 100.0)), size=n)


class TestPercentileProperties:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_monotone_in_p_and_bounded(self, seed):
        rng = np.random.default_rng(seed)
        samples = _random_samples(rng)
        qs = np.sort(rng.uniform(0.0, 1.0, size=8))
        values = [percentile(samples, float(q)) for q in qs]
        assert all(a <= b + 1e-15 for a, b in zip(values, values[1:]))
        for v in values:
            assert samples.min() <= v <= samples.max()
            assert v >= 0.0  # all generators draw non-negative samples

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:10])
    def test_all_equal_samples_hit_the_value(self, seed):
        rng = np.random.default_rng(seed)
        value = float(rng.uniform(0.0, 50.0))
        samples = np.full(int(rng.integers(1, 100)), value)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert percentile(samples, q) == value

    def test_zero_samples_raise(self):
        with pytest.raises(ValueError):
            percentile(np.array([]), 0.99)

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile(np.array([1.0]), 1.5)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:10])
    def test_order_statistic_is_an_observed_value(self, seed):
        rng = np.random.default_rng(seed)
        samples = _random_samples(rng)
        q = float(rng.uniform(0.0, 1.0))
        assert percentile(samples, q) in samples


class TestBatchMeansProperties:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:10])
    def test_estimate_bounded_and_ci_non_negative(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.exponential(size=int(rng.integers(40, 500)))
        est = batch_means_percentile(samples, 0.9, batches=10)
        assert samples.min() <= est.value <= samples.max()
        assert est.half_width >= 0.0
        mean_est = batch_means_mean(samples, batches=10)
        assert samples.min() <= mean_est.value <= samples.max()

    def test_all_equal_samples_converge_immediately(self):
        samples = np.full(100, 3.5)
        est = batch_means_percentile(samples, 0.99, batches=10)
        assert est.value == 3.5
        assert est.half_width == 0.0
        assert est.converged()


class _ConstantService:
    """A degenerate service model: every request takes ``value`` seconds."""

    def __init__(self, value: float) -> None:
        self.value = value

    def service_time(self, rng, idle_before: float) -> float:
        return self.value

    def mean_service_time(self) -> float:
        return self.value


class TestTailLatencyProperties:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:8])
    def test_non_negative_and_finite(self, seed):
        rng = np.random.default_rng(seed)
        service = _ConstantService(float(rng.uniform(1e-6, 1e-3)))
        rate = float(rng.uniform(0.1, 0.9)) / service.mean_service_time()
        tail = tail_latency_s(
            service, rate, num_requests=600, warmup=60, seed=seed
        )
        assert math.isfinite(tail)
        assert tail >= service.value  # sojourn includes the service itself

    @pytest.mark.parametrize("warmup", [0, 1, 299])
    def test_warmup_trimming_edge_cases(self, warmup):
        # With deterministic service at near-zero load (no request ever
        # queues) the tail is warmup-invariant: trimming 0, 1, or
        # all-but-one samples must neither crash nor shift the reported
        # percentile.
        service = _ConstantService(1e-4)
        tail = tail_latency_s(
            service, 1.0, num_requests=300, warmup=warmup, seed=3
        )
        assert tail == pytest.approx(1e-4)

    def test_warmup_must_leave_samples(self):
        service = _ConstantService(1e-4)
        with pytest.raises(ValueError):
            tail_latency_s(service, 1.0, num_requests=100, warmup=100, seed=0)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS[:6])
    def test_monotone_in_quantile(self, seed):
        rng = np.random.default_rng(seed)
        service = _ConstantService(float(rng.uniform(1e-6, 1e-4)))
        rate = 0.7 / service.mean_service_time()
        tails = [
            tail_latency_s(
                service,
                rate,
                num_requests=800,
                warmup=80,
                quantile=q,
                seed=seed,
            )
            for q in (0.5, 0.9, 0.99)
        ]
        assert tails[0] <= tails[1] <= tails[2]

    def test_unstable_rate_is_clamped_not_fatal(self):
        service = _ConstantService(1e-3)
        tail = tail_latency_s(
            service, 5000.0, num_requests=400, warmup=40, seed=0
        )
        assert math.isfinite(tail) and tail > 0
