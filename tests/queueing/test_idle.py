"""Idle-period law (Fig 1b claims)."""

import math

import numpy as np
import pytest

from repro.common.distributions import Exponential, LogNormal
from repro.queueing.idle import IdlePeriodLaw, empirical_idle_cdf
from repro.queueing.mg1 import MG1Simulator


class TestLaw:
    def test_paper_mean_idle_values(self):
        # "200K and 1M QPS services at 50% load average idle periods of
        # only 10 us and 2 us" (Section II-A).
        assert IdlePeriodLaw(200e3, 0.5).mean_idle_us == pytest.approx(10.0)
        assert IdlePeriodLaw(1e6, 0.5).mean_idle_us == pytest.approx(2.0)

    def test_cdf_exponential_form(self):
        law = IdlePeriodLaw(1e6, 0.5)
        t = law.mean_idle_seconds
        assert law.cdf(t) == pytest.approx(1 - math.exp(-1))

    def test_cdf_monotone(self):
        law = IdlePeriodLaw(200e3, 0.3)
        grid = np.logspace(-1, 3, 50)
        cdf = np.asarray(law.cdf_us(grid))
        assert (np.diff(cdf) >= 0).all()
        assert cdf[0] >= 0 and cdf[-1] <= 1

    def test_quantile_inverts_cdf(self):
        law = IdlePeriodLaw(1e6, 0.7)
        for q in (0.1, 0.5, 0.9):
            assert law.cdf(law.quantile(q)) == pytest.approx(q)

    def test_higher_load_shorter_idles(self):
        low = IdlePeriodLaw(1e6, 0.3).mean_idle_us
        high = IdlePeriodLaw(1e6, 0.7).mean_idle_us
        assert high < low

    def test_validation(self):
        with pytest.raises(ValueError):
            IdlePeriodLaw(0.0, 0.5)
        with pytest.raises(ValueError):
            IdlePeriodLaw(1e6, 1.0)
        with pytest.raises(ValueError):
            IdlePeriodLaw(1e6, 0.5).quantile(1.0)


class TestServiceDistributionIndependence:
    def test_idle_distribution_independent_of_service_shape(self):
        # The paper's key queueing fact: idle periods of any M/G/1 are
        # exponential with mean 1/lambda, independent of the service
        # distribution [69].
        load = 0.5
        exp_result = MG1Simulator.at_load(load, Exponential(1.0), seed=0).run(80_000)
        heavy_result = MG1Simulator.at_load(
            load, LogNormal(1.0, cv2=4.0), seed=0
        ).run(80_000)
        expected = 1.0 / load
        assert exp_result.idle_periods.mean() == pytest.approx(expected, rel=0.05)
        assert heavy_result.idle_periods.mean() == pytest.approx(expected, rel=0.05)

    def test_empirical_cdf_matches_analytic(self):
        law = IdlePeriodLaw(1.0, 0.5)  # 1 req/s scale for convenience
        result = MG1Simulator.at_load(0.5, Exponential(1.0), seed=1).run(80_000)
        grid_us = np.logspace(4, 7.5, 30)  # seconds-scale service -> us grid
        emp = empirical_idle_cdf(result.idle_periods, grid_us)
        ana = np.asarray(law.cdf_us(grid_us))
        assert np.abs(emp - ana).max() < 0.02

    def test_empirical_requires_samples(self):
        with pytest.raises(ValueError):
            empirical_idle_cdf(np.array([]), np.array([1.0]))
