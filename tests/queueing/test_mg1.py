"""M/G/1 FCFS queue simulation against queueing theory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.distributions import Deterministic, Exponential
from repro.queueing.mg1 import (
    DistributionService,
    MG1Simulator,
    RestartPenaltyService,
)


def mm1_mean_wait(load, mean_service):
    """Exact M/M/1 mean waiting time: rho/(1-rho) * E[S]."""
    return load / (1.0 - load) * mean_service


def md1_mean_wait(load, mean_service):
    """Exact M/D/1 mean waiting time: rho/(2(1-rho)) * E[S]."""
    return load / (2.0 * (1.0 - load)) * mean_service


class TestAgainstTheory:
    def test_mm1_mean_wait(self):
        sim = MG1Simulator.at_load(0.5, Exponential(1.0), seed=1)
        result = sim.run(200_000, warmup=10_000)
        assert result.wait_times.mean() == pytest.approx(
            mm1_mean_wait(0.5, 1.0), rel=0.08
        )

    def test_md1_mean_wait_is_half_of_mm1(self):
        sim = MG1Simulator.at_load(0.5, Deterministic(1.0), seed=1)
        result = sim.run(200_000, warmup=10_000)
        assert result.wait_times.mean() == pytest.approx(
            md1_mean_wait(0.5, 1.0), rel=0.08
        )

    def test_utilization_matches_load(self):
        sim = MG1Simulator.at_load(0.7, Exponential(2.0), seed=2)
        result = sim.run(100_000)
        assert result.utilization == pytest.approx(0.7, rel=0.05)

    def test_idle_periods_exponential_mean(self):
        # Idle periods of M/G/1 are Exp(lambda) regardless of service.
        load, mean_service = 0.5, 1.0
        lam = load / mean_service
        sim = MG1Simulator.at_load(load, Deterministic(mean_service), seed=3)
        result = sim.run(100_000)
        assert result.idle_periods.mean() == pytest.approx(1.0 / lam, rel=0.05)

    def test_pasta_idle_probability(self):
        # Fraction of arrivals finding the server idle = 1 - rho.
        sim = MG1Simulator.at_load(0.3, Exponential(1.0), seed=4)
        result = sim.run(100_000)
        idle_arrivals = (result.wait_times == 0).mean()
        assert idle_arrivals == pytest.approx(0.7, abs=0.02)

    def test_tail_grows_with_load(self):
        tails = []
        for load in (0.3, 0.6, 0.9):
            sim = MG1Simulator.at_load(load, Exponential(1.0), seed=5)
            tails.append(sim.run(60_000, warmup=5_000).tail_latency(0.99))
        assert tails[0] < tails[1] < tails[2]


class TestMechanics:
    def test_sojourn_is_wait_plus_service(self):
        sim = MG1Simulator.at_load(0.5, Exponential(1.0), seed=0)
        result = sim.run(1000)
        np.testing.assert_allclose(
            result.sojourn_times, result.wait_times + result.service_times
        )

    def test_warmup_dropped(self):
        sim = MG1Simulator.at_load(0.5, Exponential(1.0), seed=0)
        full = sim.run(5000, warmup=0)
        trimmed = MG1Simulator.at_load(0.5, Exponential(1.0), seed=0).run(
            5000, warmup=1000
        )
        assert trimmed.num_requests == 4000
        np.testing.assert_allclose(
            trimmed.wait_times, full.wait_times[1000:]
        )

    def test_deterministic_given_seed(self):
        a = MG1Simulator.at_load(0.5, Exponential(1.0), seed=9).run(2000)
        b = MG1Simulator.at_load(0.5, Exponential(1.0), seed=9).run(2000)
        np.testing.assert_array_equal(a.wait_times, b.wait_times)

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            MG1Simulator.at_load(0.0, Exponential(1.0))
        with pytest.raises(ValueError):
            MG1Simulator.at_load(1.0, Exponential(1.0))

    def test_invalid_requests(self):
        sim = MG1Simulator.at_load(0.5, Exponential(1.0))
        with pytest.raises(ValueError):
            sim.run(0)
        with pytest.raises(ValueError):
            sim.run(10, warmup=10)


class TestRestartPenaltyService:
    def test_penalty_only_after_idle(self):
        service = RestartPenaltyService(Deterministic(1.0), penalty=0.5)
        rng = np.random.default_rng(0)
        assert service.service_time(rng, idle_before=0.0) == 1.0
        assert service.service_time(rng, idle_before=0.1) == 1.5

    def test_mean_excludes_penalty(self):
        service = RestartPenaltyService(Deterministic(1.0), penalty=0.5)
        assert service.mean_service_time() == 1.0

    def test_penalty_raises_utilization(self):
        lam = 0.5
        plain = MG1Simulator(lam, DistributionService(Deterministic(1.0)), seed=1)
        penalized = MG1Simulator(
            lam, RestartPenaltyService(Deterministic(1.0), penalty=0.4), seed=1
        )
        u_plain = plain.run(30_000).utilization
        u_pen = penalized.run(30_000).utilization
        assert u_pen > u_plain

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            RestartPenaltyService(Deterministic(1.0), penalty=-0.1)


class _TransientSpikeService:
    """Deterministic service with a huge spike on the first request —
    a warmup transient that must not leak into steady-state statistics."""

    def __init__(self, mean: float, spike: float):
        self.mean = mean
        self.spike = spike
        self.calls = 0

    def service_time(self, rng, idle_before: float) -> float:
        self.calls += 1
        return self.spike if self.calls == 1 else self.mean

    def mean_service_time(self) -> float:
        return self.mean


class TestWarmupWindowConsistency:
    """Regression: idle_periods/busy_time/duration are trimmed to the
    same post-warmup window as wait_times/service_times (previously only
    the latter were trimmed, so utilization and the idle-period CDF
    included warmup transients the sojourn stats excluded)."""

    def test_duration_is_post_warmup_window(self):
        seed, n, warmup = 11, 20_000, 2_000
        sim = MG1Simulator.at_load(0.5, Deterministic(1.0), seed=seed)
        result = sim.run(n, warmup=warmup)
        # Reconstruct the arrival epochs from the identical RNG stream:
        # inter-arrivals are the simulator's first (vectorized) draw.
        rng = np.random.default_rng(seed)
        inter = rng.exponential(1.0 / sim.arrival_rate, size=n)
        arrivals = np.cumsum(inter)
        last_departure = (
            arrivals[-1] + result.wait_times[-1] + result.service_times[-1]
        )
        expected = last_departure - arrivals[warmup]
        assert result.duration == pytest.approx(expected, rel=1e-12)

    def test_busy_time_counts_only_window_work(self):
        sim = MG1Simulator.at_load(0.5, Deterministic(1.0), seed=7)
        result = sim.run(10_000, warmup=1_000)
        # In-window work = residual warmup backlog (the first retained
        # wait) + every retained service.
        expected = result.wait_times[0] + result.service_times.sum()
        assert result.busy_time == pytest.approx(expected, rel=1e-12)

    def test_utilization_excludes_warmup_transient(self):
        # A 5000x service spike on request 0 must not contaminate the
        # post-warmup utilization: pre-fix, busy_time kept the spike and
        # duration kept the whole warmup span, biasing utilization to
        # ~0.5 here (the warmup is long enough that the spike backlog
        # drains before the measurement window opens).
        load, n, warmup = 0.4, 20_000, 5_000
        service = _TransientSpikeService(mean=1.0, spike=5_000.0)
        sim = MG1Simulator(load, service, seed=3)
        result = sim.run(n, warmup=warmup)
        assert result.utilization == pytest.approx(load, rel=0.05)

    def test_idle_periods_trimmed_with_waits(self):
        sim = MG1Simulator.at_load(0.3, Exponential(1.0), seed=13)
        n, warmup = 50_000, 5_000
        result = sim.run(n, warmup=warmup)
        # Every retained idle period ends at a retained arrival strictly
        # inside the window: exactly one per zero-wait retained request
        # after the first.
        expected = int((result.wait_times[1:] == 0).sum())
        assert result.idle_periods.size == expected

    def test_arrival_rate_recorded(self):
        sim = MG1Simulator.at_load(0.5, Exponential(2.0), seed=0)
        assert sim.run(1000).arrival_rate == pytest.approx(sim.arrival_rate)

    def test_warmup_zero_excludes_artificial_initial_gap(self):
        # With warmup=0 the window starts at the *first arrival*, so the
        # artificial pre-simulation gap contributes neither idle time
        # nor duration.
        sim = MG1Simulator.at_load(0.5, Deterministic(1.0), seed=5)
        result = sim.run(5_000)
        rng = np.random.default_rng(5)
        inter = rng.exponential(1.0 / sim.arrival_rate, size=5_000)
        arrivals = np.cumsum(inter)
        last_departure = (
            arrivals[-1] + result.wait_times[-1] + result.service_times[-1]
        )
        assert result.duration == pytest.approx(
            last_departure - arrivals[0], rel=1e-12
        )


@settings(max_examples=15, deadline=None)
@given(
    load=st.floats(min_value=0.1, max_value=0.8),
    mean=st.floats(min_value=0.1, max_value=10.0),
)
def test_waits_nonnegative_and_busy_le_duration(load, mean):
    sim = MG1Simulator.at_load(load, Exponential(mean), seed=0)
    result = sim.run(2000)
    assert (result.wait_times >= 0).all()
    assert result.busy_time <= result.duration + 1e-9
    assert (result.idle_periods > 0).all()
