"""M/G/1 FCFS queue simulation against queueing theory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.distributions import Deterministic, Exponential
from repro.queueing.mg1 import (
    DistributionService,
    MG1Simulator,
    RestartPenaltyService,
)


def mm1_mean_wait(load, mean_service):
    """Exact M/M/1 mean waiting time: rho/(1-rho) * E[S]."""
    return load / (1.0 - load) * mean_service


def md1_mean_wait(load, mean_service):
    """Exact M/D/1 mean waiting time: rho/(2(1-rho)) * E[S]."""
    return load / (2.0 * (1.0 - load)) * mean_service


class TestAgainstTheory:
    def test_mm1_mean_wait(self):
        sim = MG1Simulator.at_load(0.5, Exponential(1.0), seed=1)
        result = sim.run(200_000, warmup=10_000)
        assert result.wait_times.mean() == pytest.approx(
            mm1_mean_wait(0.5, 1.0), rel=0.08
        )

    def test_md1_mean_wait_is_half_of_mm1(self):
        sim = MG1Simulator.at_load(0.5, Deterministic(1.0), seed=1)
        result = sim.run(200_000, warmup=10_000)
        assert result.wait_times.mean() == pytest.approx(
            md1_mean_wait(0.5, 1.0), rel=0.08
        )

    def test_utilization_matches_load(self):
        sim = MG1Simulator.at_load(0.7, Exponential(2.0), seed=2)
        result = sim.run(100_000)
        assert result.utilization == pytest.approx(0.7, rel=0.05)

    def test_idle_periods_exponential_mean(self):
        # Idle periods of M/G/1 are Exp(lambda) regardless of service.
        load, mean_service = 0.5, 1.0
        lam = load / mean_service
        sim = MG1Simulator.at_load(load, Deterministic(mean_service), seed=3)
        result = sim.run(100_000)
        assert result.idle_periods.mean() == pytest.approx(1.0 / lam, rel=0.05)

    def test_pasta_idle_probability(self):
        # Fraction of arrivals finding the server idle = 1 - rho.
        sim = MG1Simulator.at_load(0.3, Exponential(1.0), seed=4)
        result = sim.run(100_000)
        idle_arrivals = (result.wait_times == 0).mean()
        assert idle_arrivals == pytest.approx(0.7, abs=0.02)

    def test_tail_grows_with_load(self):
        tails = []
        for load in (0.3, 0.6, 0.9):
            sim = MG1Simulator.at_load(load, Exponential(1.0), seed=5)
            tails.append(sim.run(60_000, warmup=5_000).tail_latency(0.99))
        assert tails[0] < tails[1] < tails[2]


class TestMechanics:
    def test_sojourn_is_wait_plus_service(self):
        sim = MG1Simulator.at_load(0.5, Exponential(1.0), seed=0)
        result = sim.run(1000)
        np.testing.assert_allclose(
            result.sojourn_times, result.wait_times + result.service_times
        )

    def test_warmup_dropped(self):
        sim = MG1Simulator.at_load(0.5, Exponential(1.0), seed=0)
        full = sim.run(5000, warmup=0)
        trimmed = MG1Simulator.at_load(0.5, Exponential(1.0), seed=0).run(
            5000, warmup=1000
        )
        assert trimmed.num_requests == 4000
        np.testing.assert_allclose(
            trimmed.wait_times, full.wait_times[1000:]
        )

    def test_deterministic_given_seed(self):
        a = MG1Simulator.at_load(0.5, Exponential(1.0), seed=9).run(2000)
        b = MG1Simulator.at_load(0.5, Exponential(1.0), seed=9).run(2000)
        np.testing.assert_array_equal(a.wait_times, b.wait_times)

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            MG1Simulator.at_load(0.0, Exponential(1.0))
        with pytest.raises(ValueError):
            MG1Simulator.at_load(1.0, Exponential(1.0))

    def test_invalid_requests(self):
        sim = MG1Simulator.at_load(0.5, Exponential(1.0))
        with pytest.raises(ValueError):
            sim.run(0)
        with pytest.raises(ValueError):
            sim.run(10, warmup=10)


class TestRestartPenaltyService:
    def test_penalty_only_after_idle(self):
        service = RestartPenaltyService(Deterministic(1.0), penalty=0.5)
        rng = np.random.default_rng(0)
        assert service.service_time(rng, idle_before=0.0) == 1.0
        assert service.service_time(rng, idle_before=0.1) == 1.5

    def test_mean_excludes_penalty(self):
        service = RestartPenaltyService(Deterministic(1.0), penalty=0.5)
        assert service.mean_service_time() == 1.0

    def test_penalty_raises_utilization(self):
        lam = 0.5
        plain = MG1Simulator(lam, DistributionService(Deterministic(1.0)), seed=1)
        penalized = MG1Simulator(
            lam, RestartPenaltyService(Deterministic(1.0), penalty=0.4), seed=1
        )
        u_plain = plain.run(30_000).utilization
        u_pen = penalized.run(30_000).utilization
        assert u_pen > u_plain

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            RestartPenaltyService(Deterministic(1.0), penalty=-0.1)


@settings(max_examples=15, deadline=None)
@given(
    load=st.floats(min_value=0.1, max_value=0.8),
    mean=st.floats(min_value=0.1, max_value=10.0),
)
def test_waits_nonnegative_and_busy_le_duration(load, mean):
    sim = MG1Simulator.at_load(load, Exponential(mean), seed=0)
    result = sim.run(2000)
    assert (result.wait_times >= 0).all()
    assert result.busy_time <= result.duration + 1e-9
    assert (result.idle_periods > 0).all()
