"""Discrete-event engine."""

import pytest

from repro.queueing.event import EventQueue


def test_events_run_in_time_order():
    q = EventQueue()
    order = []
    q.schedule(3.0, lambda: order.append("c"))
    q.schedule(1.0, lambda: order.append("a"))
    q.schedule(2.0, lambda: order.append("b"))
    q.run()
    assert order == ["a", "b", "c"]


def test_ties_fifo():
    q = EventQueue()
    order = []
    for name in "abc":
        q.schedule(1.0, lambda n=name: order.append(n))
    q.run()
    assert order == ["a", "b", "c"]


def test_now_advances():
    q = EventQueue()
    times = []
    q.schedule(5.0, lambda: times.append(q.now))
    q.run()
    assert times == [5.0]
    assert q.now == 5.0


def test_schedule_during_event():
    q = EventQueue()
    order = []

    def first():
        order.append("first")
        q.schedule(1.0, lambda: order.append("second"))

    q.schedule(1.0, first)
    q.run()
    assert order == ["first", "second"]
    assert q.now == 2.0


def test_run_until():
    q = EventQueue()
    fired = []
    q.schedule(1.0, lambda: fired.append(1))
    q.schedule(10.0, lambda: fired.append(10))
    executed = q.run(until=5.0)
    assert executed == 1
    assert fired == [1]
    assert q.now == 5.0
    assert len(q) == 1


def test_max_events():
    q = EventQueue()
    for i in range(5):
        q.schedule(float(i + 1), lambda: None)
    assert q.run(max_events=3) == 3
    assert len(q) == 2


def test_step_empty():
    assert not EventQueue().step()


def test_no_past_scheduling():
    q = EventQueue()
    q.schedule(1.0, lambda: None)
    q.run()
    with pytest.raises(ValueError):
        q.schedule_at(0.5, lambda: None)
    with pytest.raises(ValueError):
        q.schedule(-1.0, lambda: None)


def test_peek_time():
    q = EventQueue()
    assert q.peek_time() is None
    q.schedule(2.0, lambda: None)
    assert q.peek_time() == 2.0
    assert not q.empty
