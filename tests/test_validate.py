"""The invariant-checking layer: catalogue, modes, wiring.

Valid results (straight out of the simulators) must check clean across
seeds; deliberately corrupted copies must be flagged; the mode machinery
must be off/warn/strict as configured; and the CLI sweep must run the
whole pipeline under a collector.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import validate
from repro.common.distributions import Exponential
from repro.harness.experiment import CellResult
from repro.harness.measure import CoreMeasurement
from repro.queueing.mg1 import MG1Simulator, QueueResult
from repro.validate import (
    Mode,
    ValidationError,
    ValidationWarning,
    Violation,
    check,
    check_tail_value,
)


@pytest.fixture(autouse=True)
def _restore_mode():
    yield
    validate.set_mode(None)


def queue_result(seed=0, load=0.5, n=5_000, warmup=500) -> QueueResult:
    sim = MG1Simulator.at_load(load, Exponential(1.0), seed=seed)
    return sim.run(n, warmup=warmup)


def core_measurement(**overrides) -> CoreMeasurement:
    base = dict(
        design_name="baseline",
        workload_name="McRouter",
        frequency_hz=2.5e9,
        master_compute_ipc=2.0,
        utilization_at_saturation=0.6,
        master_ipc_saturated=1.4,
        idle_fill_ipc=3.0,
        lender_ipc=4.5,
        master_stall_fraction=0.3,
        switch_overhead_cycles=120,
    )
    base.update(overrides)
    return CoreMeasurement(**base)


def cell(
    design="duplexity", workload="McRouter", load=0.3, tail=50.0, **overrides
) -> CellResult:
    base = dict(
        design_name=design,
        workload_name=workload,
        load=load,
        utilization=0.55,
        master_slowdown=1.1,
        service_inflation=1.05,
        tail_99_us=tail,
        tail_99_vs_baseline=1.0 if design == "baseline" else 0.9,
        iso_tail_99_us=tail * 1.1,
        iso_tail_99_vs_baseline=1.0 if design == "baseline" else 0.95,
        performance_density_vs_baseline=1.0 if design == "baseline" else 1.2,
        energy_vs_baseline=1.0 if design == "baseline" else 0.8,
        batch_stp_vs_baseline=1.0 if design == "baseline" else 1.5,
        nic_iops_utilization=0.2,
    )
    base.update(overrides)
    return CellResult(**base)


def grid(design="duplexity"):
    """A monotone two-load series plus its baseline counterparts."""
    return [
        cell("baseline", load=0.3, tail=40.0),
        cell("baseline", load=0.7, tail=90.0),
        cell(design, load=0.3, tail=50.0),
        cell(design, load=0.7, tail=120.0),
    ]


class TestModeSelection:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert validate.get_mode() is Mode.OFF

    @pytest.mark.parametrize("raw", ["off", "warn", "strict", " STRICT "])
    def test_env_parsed(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_VALIDATE", raw)
        assert validate.get_mode() is Mode(raw.strip().lower())

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "stricf")
        with pytest.raises(ValueError, match="REPRO_VALIDATE"):
            validate.get_mode()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "off")
        validate.set_mode("strict")
        assert validate.get_mode() is Mode.STRICT
        validate.set_mode(None)
        assert validate.get_mode() is Mode.OFF


class TestQueueResultInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_real_runs_check_clean(self, seed):
        rng = np.random.default_rng(seed)
        load = float(rng.uniform(0.1, 0.85))
        result = queue_result(seed=seed, load=load)
        assert check(result) == []

    def test_busy_beyond_duration_flagged(self):
        corrupt = dataclasses.replace(
            queue_result(), busy_time=queue_result().duration * 1.5
        )
        invariants = {v.invariant for v in check(corrupt)}
        assert "busy-le-duration" in invariants

    def test_negative_wait_flagged(self):
        result = queue_result()
        waits = result.wait_times.copy()
        waits[10] = -1e-6
        corrupt = dataclasses.replace(result, wait_times=waits)
        assert "non-negative" in {v.invariant for v in check(corrupt)}

    def test_nonpositive_idle_flagged(self):
        result = queue_result()
        idles = result.idle_periods.copy()
        idles[0] = 0.0
        corrupt = dataclasses.replace(result, idle_periods=idles)
        assert "positive-idle" in {v.invariant for v in check(corrupt)}

    def test_nan_flagged(self):
        corrupt = dataclasses.replace(queue_result(), duration=float("nan"))
        assert "finite" in {v.invariant for v in check(corrupt)}

    def test_wrong_arrival_rate_breaks_conservation(self):
        # Claiming double the offered rate must trip Little's law and/or
        # the utilization-vs-rho conservation check.
        result = queue_result(load=0.5, n=20_000, warmup=2_000)
        corrupt = dataclasses.replace(
            result, arrival_rate=result.arrival_rate * 2.0
        )
        invariants = {v.invariant for v in check(corrupt)}
        assert invariants & {"littles-law", "utilization-rho"}

    def test_untrimmed_window_breaks_conservation(self):
        # The pre-fix bug shape: duration stretched by a warmup span the
        # sojourn statistics exclude.
        result = queue_result(load=0.7, n=20_000, warmup=2_000)
        corrupt = dataclasses.replace(
            result, duration=result.duration * 1.25
        )
        invariants = {v.invariant for v in check(corrupt)}
        assert invariants & {"littles-law", "utilization-rho"}

    def test_short_runs_skip_stochastic_checks(self):
        result = queue_result(n=200, warmup=0)
        corrupt = dataclasses.replace(
            result, arrival_rate=result.arrival_rate * 5
        )
        assert check(corrupt) == []


class TestCoreMeasurementInvariants:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_valid_instances_check_clean(self, seed):
        rng = np.random.default_rng(seed)
        m = core_measurement(
            master_compute_ipc=float(rng.uniform(0.2, 4.0)),
            utilization_at_saturation=float(rng.uniform(0.0, 1.0)),
            master_stall_fraction=float(rng.uniform(0.0, 1.0)),
            idle_fill_ipc=float(rng.uniform(0.0, 8.0)),
            lender_ipc=float(rng.uniform(0.0, 8.0)),
        )
        m = dataclasses.replace(
            m, master_ipc_saturated=m.master_compute_ipc * float(rng.uniform(0, 1))
        )
        assert check(m) == []

    @pytest.mark.parametrize(
        "field, value, invariant",
        [
            ("master_stall_fraction", 1.5, "fraction-range"),
            ("utilization_at_saturation", -0.01, "fraction-range"),
            ("master_compute_ipc", 4.7, "ipc-width"),
            ("idle_fill_ipc", 9.0, "ipc-width"),
            ("lender_ipc", -0.5, "ipc-width"),
            ("frequency_hz", 0.0, "positive"),
            ("switch_overhead_cycles", -1, "non-negative"),
            ("master_compute_ipc", float("inf"), "finite"),
        ],
    )
    def test_corrupted_field_flagged(self, field, value, invariant):
        corrupt = core_measurement(**{field: value})
        assert invariant in {v.invariant for v in check(corrupt)}

    def test_saturated_above_compute_ipc_flagged(self):
        corrupt = core_measurement(
            master_compute_ipc=1.0, master_ipc_saturated=1.2
        )
        assert "ipc-ordering" in {v.invariant for v in check(corrupt)}


class TestCellAndGridInvariants:
    def test_valid_grid_checks_clean(self):
        assert check(grid()) == []

    def test_negative_tail_flagged(self):
        assert "positive-finite" in {
            v.invariant for v in check(cell(tail=-1.0))
        }

    def test_utilization_above_one_flagged(self):
        assert "utilization-range" in {
            v.invariant for v in check(cell(utilization=1.2))
        }

    def test_slowdown_below_one_flagged(self):
        assert "slowdown-ge-1" in {
            v.invariant for v in check(cell(master_slowdown=0.8))
        }

    def test_baseline_ratio_must_be_one(self):
        cells = grid()
        cells[0] = dataclasses.replace(cells[0], energy_vs_baseline=1.01)
        violations = check(cells)
        assert "baseline-ratio" in {v.invariant for v in violations}

    def test_non_monotone_tail_flagged(self):
        cells = grid()
        cells[3] = dataclasses.replace(cells[3], tail_99_us=10.0)
        assert "tail-monotone" in {v.invariant for v in check(cells)}

    def test_mixed_sequence_rejected(self):
        with pytest.raises(TypeError):
            check([cell(), core_measurement()])

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            check(object())


class TestDispatchModes:
    def test_off_mode_skips_checking(self):
        validate.set_mode("off")
        corrupt = core_measurement(master_stall_fraction=2.0)
        assert validate.dispatch(corrupt) == []

    def test_warn_mode_warns_and_returns(self):
        validate.set_mode("warn")
        corrupt = core_measurement(master_stall_fraction=2.0)
        with pytest.warns(ValidationWarning, match="fraction-range"):
            violations = validate.dispatch(corrupt)
        assert violations

    def test_strict_mode_raises_with_structure(self):
        validate.set_mode("strict")
        corrupt = core_measurement(master_stall_fraction=2.0)
        with pytest.raises(ValidationError) as excinfo:
            validate.dispatch(corrupt)
        assert any(
            v.invariant == "fraction-range" for v in excinfo.value.violations
        )

    def test_strict_mode_passes_clean_results(self):
        validate.set_mode("strict")
        assert validate.dispatch(core_measurement()) == []

    def test_collecting_suppresses_strict_raise(self):
        validate.set_mode("strict")
        corrupt = core_measurement(master_stall_fraction=2.0)
        with validate.collecting() as found:
            validate.dispatch(corrupt)
            validate.dispatch(core_measurement())
        assert len(found) == 1
        assert found[0].invariant == "fraction-range"

    def test_collecting_checks_even_when_off(self):
        validate.set_mode("off")
        corrupt = core_measurement(master_stall_fraction=2.0)
        with validate.collecting() as found:
            validate.dispatch(corrupt)
        assert found


class TestTailValueCheck:
    def test_valid(self):
        assert check_tail_value(1e-4, "tail:x") == []

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid(self, bad):
        violations = check_tail_value(bad, "tail:x")
        assert violations and violations[0].invariant == "positive-finite"


class TestStrictWiring:
    """Strict mode stops bad values before they reach the caches."""

    def test_tail_pipeline_validates_queue_run(self, monkeypatch):
        from repro.harness import metrics
        from repro.queueing.mg1 import DistributionService

        # Corrupt the simulator output (double the recorded offered
        # rate): Little's law must trip inside tail_latency_s itself.
        real_run = MG1Simulator.run

        def corrupted_run(self, num_requests, warmup=0):
            result = real_run(self, num_requests, warmup=warmup)
            return dataclasses.replace(
                result, arrival_rate=result.arrival_rate * 2.0
            )

        monkeypatch.setattr(MG1Simulator, "run", corrupted_run)
        validate.set_mode("strict")
        with pytest.raises(ValidationError):
            metrics.tail_latency_s(
                DistributionService(Exponential(1e-4)),
                3000.0,
                num_requests=4000,
                warmup=400,
            )

    def test_violation_str_mentions_numbers(self):
        v = Violation("busy-le-duration", "q", "busy > window", 2.0, 1.0)
        text = str(v)
        assert "busy-le-duration" in text and "2" in text and "1" in text


class TestFormatViolations:
    def test_empty(self):
        from repro.harness.reporting import format_violations

        assert "0 invariant violations" in format_violations([])

    def test_table(self):
        from repro.harness.reporting import format_violations

        out = format_violations(
            [Violation("littles-law", "queue:x", "deviates", 1.0, 2.0)]
        )
        assert "littles-law" in out and "queue:x" in out


class TestRegenHook:
    def test_regen_forces_strict_mode(self, monkeypatch):
        """Goldens can never be regenerated from invariant-violating
        runs: regen.main() forces strict mode before writing."""
        import tests.golden as golden_pkg
        import tests.golden.regen as regen
        from repro.harness import cache

        config = cache.current_config()
        seen: dict = {}

        def fake_write_golden():
            seen["mode"] = validate.get_mode()
            # A violating grid must abort the regeneration.
            bad = [cell(master_slowdown=0.5)]
            validate.dispatch(bad, subject="grid")
            raise AssertionError("strict dispatch should have raised")

        monkeypatch.setattr(golden_pkg, "write_golden", fake_write_golden)
        try:
            with pytest.raises(ValidationError):
                regen.main()
        finally:
            validate.set_mode(None)
            cache.configure(**config)
        assert seen["mode"] is Mode.STRICT


class TestValidateCLI:
    def test_cli_sweep_reports_clean(self, monkeypatch, capsys):
        """End-to-end ``python -m repro validate`` on a tiny fidelity."""
        from repro import cli
        from repro.harness import cache
        from tests.golden import GOLDEN_FIDELITY

        config = cache.current_config()
        monkeypatch.setitem(
            cli.FIDELITIES, "fast", dataclasses.replace(GOLDEN_FIDELITY)
        )
        try:
            code = cli.main(["validate", "--workload", "mcrouter"])
        finally:
            cache.configure(**config)
        out = capsys.readouterr().out
        assert code == 0
        assert "0 invariant violations" in out
