"""The compiled cluster event loop: byte-identity with the Python
reference, stream end-state, eject/refill/growth paths, and the
eligibility ladder (spy tests proving when the kernel must NOT bind).
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.cluster import sim as sim_module
from repro.cluster import tailobs
from repro.cluster.arrivals import MMPPArrivals, PoissonArrivals
from repro.cluster.sim import DISPATCH_STREAM, ClusterSimulator
from repro.common.distributions import Distribution, Exponential
from repro.common.rng import SeedSequenceFactory
from repro.queueing.mg1 import RestartPenaltyService
from repro.uarch import fastpath
from repro.uarch.fastpath import cluster as fp_cluster

needs_kernel = pytest.mark.skipif(
    not fastpath.is_available(), reason="no C compiler / kernel unavailable"
)

SERVICE = Exponential(100e-6)
PENALIZED = RestartPenaltyService(Exponential(100e-6), 5e-6)


def assert_results_identical(a, b):
    assert np.array_equal(a.sojourn_times, b.sojourn_times)
    assert a.duration == b.duration
    assert a.arrival_rate == b.arrival_rate
    assert a.fanout == b.fanout and a.balancer == b.balancer
    assert len(a.servers) == len(b.servers)
    for sa, sb in zip(a.servers, b.servers):
        assert np.array_equal(sa.wait_times, sb.wait_times)
        assert np.array_equal(sa.service_times, sb.service_times)
        assert np.array_equal(sa.idle_periods, sb.idle_periods)
        assert sa.busy_time == sb.busy_time
        assert sa.duration == sb.duration
        assert sa.arrival_rate == sb.arrival_rate


def make_sim(
    balancer="jsq",
    fanout=2,
    n_servers=5,
    arrivals=None,
    service=SERVICE,
    seed=11,
    load=0.7,
    force_event_loop=False,
):
    return ClusterSimulator.at_load(
        load,
        service,
        n_servers=n_servers,
        fanout=fanout,
        balancer=balancer,
        seed=seed,
        arrivals=arrivals,
        force_event_loop=force_event_loop,
    )


@needs_kernel
class TestKernelByteIdentity:
    @pytest.mark.parametrize("balancer", ["jsq", "power_of_two"])
    @pytest.mark.parametrize("fanout", [1, 2, 4])
    @pytest.mark.parametrize("arrivals", ["poisson", "mmpp"])
    @pytest.mark.parametrize("service", [SERVICE, PENALIZED])
    def test_full_result_identical_to_python_loop(
        self, balancer, fanout, arrivals, service
    ):
        """Every ClusterResult/QueueResult field is byte-identical
        between the compiled event kernel and the Python loop across
        {jsq, power_of_two} x fanout x {Poisson, MMPP} x penalties."""
        process = (
            None if arrivals == "poisson"
            else (lambda rate: MMPPArrivals.bursty(rate))
        )
        fastpath.set_mode("on")
        try:
            compiled = make_sim(
                balancer, fanout, arrivals=process, service=service
            ).run(3_000, 300)
            reference = make_sim(
                balancer, fanout, arrivals=process, service=service,
                force_event_loop="python",
            ).run(3_000, 300)
        finally:
            fastpath.set_mode(None)
        assert compiled.fastpath_servers == 5
        assert reference.fastpath_servers == 0
        assert_results_identical(compiled, reference)

    @pytest.mark.parametrize("balancer", ["jsq", "power_of_two"])
    def test_dispatch_stream_end_state_identical(self, balancer, monkeypatch):
        """The kernel's written-back PCG64 state equals the state the
        interpreted loop leaves behind — the dispatch stream advances
        identically (has_uint32/uinteger buffer included)."""
        captured = []

        class Recording(SeedSequenceFactory):
            def get(self, label):
                rng = super().get(label)
                if label == DISPATCH_STREAM:
                    captured.append(rng)
                return rng

        monkeypatch.setattr(sim_module, "SeedSequenceFactory", Recording)
        fastpath.set_mode("on")
        try:
            compiled = make_sim(balancer, fanout=3).run(2_000, 200)
            reference = make_sim(
                balancer, fanout=3, force_event_loop="python"
            ).run(2_000, 200)
        finally:
            fastpath.set_mode(None)
        assert_results_identical(compiled, reference)
        assert len(captured) == 2
        state_kernel = captured[0].bit_generator.state
        state_python = captured[1].bit_generator.state
        assert state_kernel == state_python

    def test_assign_mode_matches_vectorized_executor(self):
        """force_event_loop=True routes a state-independent balancer
        through the event loop (kernel mode 0: precomputed assignment
        matrix) with results identical to the per-server executor."""
        fastpath.set_mode("on")
        try:
            vectorized = make_sim("random", fanout=2).run(3_000, 300)
            event = make_sim(
                "random", fanout=2, force_event_loop=True
            ).run(3_000, 300)
        finally:
            fastpath.set_mode(None)
        assert_results_identical(vectorized, event)

    def test_refill_and_growth_paths_stay_identical(self, monkeypatch):
        """Tiny buffers force every eject path — service refills, output
        doubling, heap doubling — without changing a single byte."""
        monkeypatch.setattr(fp_cluster, "CHUNK", 3)
        monkeypatch.setattr(fp_cluster, "HEAP_CAP", 2)
        monkeypatch.setattr(
            fp_cluster, "initial_capacity", lambda n, f, s: 4
        )
        fastpath.set_mode("on")
        try:
            compiled = make_sim("jsq", fanout=3, load=0.9).run(1_500, 150)
            reference = make_sim(
                "jsq", fanout=3, load=0.9, force_event_loop="python"
            ).run(1_500, 150)
        finally:
            fastpath.set_mode(None)
        assert compiled.fastpath_servers == 5
        assert_results_identical(compiled, reference)

    def test_negative_service_raises_like_the_reference(self):
        @dataclass(frozen=True)
        class NegativeService:
            def service_time(self, rng, idle_before):
                return -1.0

            def mean_service_time(self):
                return 1.0

            def batch_base(self, rng, n):
                return np.full(n, -1.0), 0.0, False

        sim = ClusterSimulator(
            PoissonArrivals(1000.0), NegativeService(), n_servers=3,
            fanout=2, balancer="jsq", seed=5,
        )
        fastpath.set_mode("on")
        try:
            with pytest.raises(ValueError, match="negative"):
                sim.run(100, 10)
        finally:
            fastpath.set_mode(None)


class TestEligibilityLadder:
    """When the kernel must not bind, proven by spies on the driver."""

    def _bomb(self, monkeypatch):
        def bomb(**kwargs):
            raise AssertionError("the event kernel must not bind here")

        monkeypatch.setattr(fp_cluster, "run_cluster_events", bomb)

    def test_fastpath_off_never_binds(self, monkeypatch):
        self._bomb(monkeypatch)
        fastpath.set_mode("off")
        try:
            result = make_sim("jsq").run(500, 50)
        finally:
            fastpath.set_mode(None)
        assert result.fastpath_servers == 0

    def test_force_python_never_binds(self, monkeypatch):
        self._bomb(monkeypatch)
        fastpath.set_mode("on")
        try:
            result = make_sim("jsq", force_event_loop="python").run(500, 50)
        finally:
            fastpath.set_mode(None)
        assert result.fastpath_servers == 0

    def test_tailobs_enabled_never_binds(self, monkeypatch):
        self._bomb(monkeypatch)
        fastpath.set_mode("on")
        tailobs.reset()
        tailobs.enable()
        try:
            result = make_sim("jsq").run(500, 50)
            assert len(tailobs.snapshot().runs) == 1
        finally:
            tailobs.reset()
            fastpath.set_mode(None)
        assert result.fastpath_servers == 0

    @needs_kernel
    def test_non_stream_safe_service_falls_back(self, monkeypatch):
        """A service model outside the stream-safe whitelist makes the
        driver return None with every stream untouched; the Python loop
        produces the result."""

        class TwoDraw(Distribution):
            def mean(self):
                return 150e-6

            def sample(self, rng):
                return float(
                    rng.uniform(50e-6, 150e-6) + rng.uniform(0.0, 100e-6)
                )

        returns = []
        real = fp_cluster.run_cluster_events

        def spy(**kwargs):
            value = real(**kwargs)
            returns.append(value)
            return value

        monkeypatch.setattr(fp_cluster, "run_cluster_events", spy)
        fastpath.set_mode("on")
        try:
            result = make_sim("jsq", service=TwoDraw()).run(500, 50)
            reference = make_sim(
                "jsq", service=TwoDraw(), force_event_loop="python"
            ).run(500, 50)
        finally:
            fastpath.set_mode(None)
        assert returns == [None]
        assert result.fastpath_servers == 0
        assert_results_identical(result, reference)


class TestForceEventLoopFlag:
    def test_rejects_unknown_values(self):
        with pytest.raises(ValueError, match="force_event_loop"):
            ClusterSimulator(
                1000.0, SERVICE, n_servers=2, force_event_loop="compiled"
            )

    def test_at_load_passes_the_flag_through(self):
        sim = make_sim("random", force_event_loop="python")
        assert sim.force_event_loop == "python"


class TestHeapDrainEquivalence:
    """The retained Python loop's global departure min-heap against the
    original per-server deque scan, bit for bit."""

    @pytest.mark.parametrize("balancer", ["jsq", "power_of_two"])
    def test_heap_loop_matches_deque_reference(self, balancer):
        from collections import deque

        from repro.cluster.sim import SERVER_STREAM_PREFIX

        sim = make_sim(balancer, fanout=2, force_event_loop="python")
        num_requests, warmup = 2_000, 200
        fastpath.set_mode("off")
        try:
            result = sim.run(num_requests, warmup)
        finally:
            fastpath.set_mode(None)

        # The pre-heap reference loop, verbatim: per-server departure
        # deques drained by scanning every server at every arrival.
        streams = SeedSequenceFactory(sim.seed)
        epochs = np.ascontiguousarray(
            sim.arrivals.epochs(streams, num_requests), dtype=np.float64
        )
        n_servers = sim.n_servers
        rngs = [
            streams.get(f"{SERVER_STREAM_PREFIX}{i}")
            for i in range(n_servers)
        ]
        dispatch_rng = streams.get(DISPATCH_STREAM)
        completion = [0.0] * n_servers
        queue_lengths = np.zeros(n_servers, dtype=np.int64)
        departures = [deque() for _ in range(n_servers)]
        waits_by = [[] for _ in range(n_servers)]
        services_by = [[] for _ in range(n_servers)]
        idles_by = [[] for _ in range(n_servers)]
        warmup_counts = [0] * n_servers
        sojourns = np.empty(num_requests)
        for j in range(num_requests):
            t = float(epochs[j])
            for i in range(n_servers):
                dep = departures[i]
                while dep and dep[0] <= t:
                    dep.popleft()
                    queue_lengths[i] -= 1
            chosen = sim.balancer.select(
                dispatch_rng, sim.fanout, n_servers, queue_lengths
            )
            retained = j >= warmup
            worst = 0.0
            for raw in chosen:
                i = int(raw)
                residual = completion[i] - t
                if residual >= 0.0:
                    wait = residual
                    idle_before = 0.0
                else:
                    wait = 0.0
                    idle_before = -residual
                    if retained and len(waits_by[i]) > warmup_counts[i]:
                        idles_by[i].append(idle_before)
            # fmt: off
                s = sim.service.service_time(rngs[i], idle_before)
                waits_by[i].append(wait)
                services_by[i].append(s)
                if not retained:
                    warmup_counts[i] += 1
                departure = t + wait + s
                completion[i] = departure
                departures[i].append(departure)
                queue_lengths[i] += 1
                sojourn = wait + s
                if sojourn > worst:
                    worst = sojourn
            # fmt: on
            sojourns[j] = worst

        assert np.array_equal(result.sojourn_times, sojourns[warmup:])
        for i, server in enumerate(result.servers):
            w_i = warmup_counts[i]
            assert np.array_equal(
                server.wait_times, np.asarray(waits_by[i][w_i:], dtype=float)
            )
            assert np.array_equal(
                server.service_times,
                np.asarray(services_by[i][w_i:], dtype=float),
            )
            assert np.array_equal(
                server.idle_periods, np.asarray(idles_by[i], dtype=float)
            )
