"""Cluster tail observability: critical-path reconciliation, attribution
conservation, queue-length reconstruction, SLO math, worker deltas, and
the obs contract (off by default, result-transparent)."""

import dataclasses
import pickle

import numpy as np
import pytest

import repro.cluster.experiment as cluster_experiment
from repro import validate
from repro.cluster import tailobs
from repro.cluster.experiment import ClusterConfig, run_cluster_sweep
from repro.cluster.metrics import (
    burn_rate,
    slo_exceedances,
    worst_window_exceedances,
)
from repro.cluster.sim import ClusterSimulator
from repro.cluster.tailobs import SLObjective, TailObsConfig
from repro.common.distributions import Exponential
from repro.harness import cache
from repro.queueing.stats import percentile
from repro.workloads.microservices import wordstem

SERVICE = Exponential(2e-6)


@pytest.fixture(autouse=True)
def _fresh_tailobs():
    tailobs.reset()
    yield
    tailobs.reset()


def run_cluster(
    balancer="jsq",
    fanout=2,
    n_servers=4,
    seed=7,
    n=4_000,
    warmup=400,
    load=0.7,
    force_event_loop=False,
):
    sim = ClusterSimulator.at_load(
        load, SERVICE, n_servers=n_servers, fanout=fanout,
        balancer=balancer, seed=seed,
        force_event_loop=force_event_loop,
    )
    return sim.run(n, warmup)


def only_run():
    snap = tailobs.snapshot()
    assert len(snap.runs) == 1
    return snap.runs[0]


def test_off_by_default_records_nothing():
    assert not tailobs.is_enabled()
    run_cluster()
    assert tailobs.snapshot().empty


class TestReconciliation:
    @pytest.mark.parametrize(
        "balancer", ["random", "round_robin", "jsq", "power_of_two"]
    )
    @pytest.mark.parametrize("fanout", [1, 2, 4])
    def test_critical_path_exact(self, balancer, fanout):
        """The acceptance property: for every record, the critical leaf's
        wait + service *is* the fork-join sojourn — exact float equality,
        because the reconstruction repeats the executor's own addition."""
        tailobs.enable()
        run_cluster(balancer=balancer, fanout=fanout, n=3_000, warmup=300)
        run = only_run()
        assert run.records
        for rec in run.records:
            crit = rec.waits[rec.crit_leaf] + rec.services[rec.crit_leaf]
            assert crit == rec.sojourn_s
            for w, s in zip(rec.waits, rec.services):
                assert w + s <= rec.sojourn_s
        assert validate.check(run) == []

    def test_recorded_sojourns_match_result(self):
        tailobs.enable()
        result = run_cluster(balancer="random")
        run = only_run()
        for rec in run.records:
            assert rec.sojourn_s == result.sojourn_times[rec.index - run.warmup]
            assert rec.arrival_s > 0
            assert len(rec.servers) == run.fanout
            assert len(set(rec.servers)) == run.fanout


class TestAttribution:
    def test_integer_conservation_and_request_cover(self):
        """Shares sum to the exceedance mass as an integer identity, and
        the mass equals the per-request ps exceedances of *every* request
        past the quantile (attribution never loses requests to caps)."""
        tailobs.enable()
        result = run_cluster(balancer="jsq")
        run = only_run()
        retained = result.sojourn_times
        assert run.attributions
        for att in run.attributions:
            assert sum(att.shares_ps.values()) == att.exceedance_ps
            assert all(v >= 0 for v in att.shares_ps.values())
            value = run.quantile_value(att.quantile)
            assert value == att.threshold_s
            over = retained[retained > value]
            assert att.requests == over.size
            expected = sum(int(round((s - value) * 1e12)) for s in over)
            assert att.exceedance_ps == expected

    def test_fanout_one_has_no_straggle(self):
        tailobs.enable()
        run_cluster(balancer="random", fanout=1)
        run = only_run()
        for att in run.attributions:
            assert att.shares_ps["straggle"] == 0

    def test_shares_are_fractions_of_mass(self):
        tailobs.enable()
        run_cluster(balancer="jsq")
        run = only_run()
        att = run.attributions[0]
        assert sum(att.share(c) for c in tailobs.CAUSES) == pytest.approx(1.0)


class TestQueueReconstruction:
    def test_matches_live_event_loop_state(self, monkeypatch):
        """The reconstructed dispatch-time queue lengths equal the queue
        state the event loop actually showed the balancer (spied via a
        wrapped JSQ select)."""
        from repro.cluster import balancers

        live = []
        original = balancers.JSQBalancer.select

        def spy(self, rng, fanout, n_servers, queue_lengths):
            chosen = original(self, rng, fanout, n_servers, queue_lengths)
            live.append((queue_lengths.copy(), np.array(chosen)))
            return chosen

        monkeypatch.setattr(balancers.JSQBalancer, "select", spy)
        tailobs.enable(TailObsConfig(reservoir=128))
        run_cluster(balancer="jsq", n=2_000, warmup=200)
        run = only_run()
        assert run.queues_observed
        assert run.records
        for rec in run.records:
            qlens, _ = live[rec.index]
            assert rec.min_queue_len == int(qlens.min())
            for slot, server in enumerate(rec.servers):
                assert rec.queue_lens[slot] == int(qlens[server])

    def test_chosen_never_below_minimum(self):
        tailobs.enable()
        run_cluster(balancer="power_of_two")
        run = only_run()
        for rec in run.records:
            assert min(rec.queue_lens) >= rec.min_queue_len


class TestSelection:
    def test_threshold_captures_all_above(self):
        threshold = 30e-6
        tailobs.enable(
            TailObsConfig(quantiles=(), threshold_s=threshold, reservoir=0)
        )
        result = run_cluster(balancer="random")
        run = only_run()
        expected = np.flatnonzero(result.sojourn_times > threshold)
        assert [r.index - run.warmup for r in run.records] == list(expected)

    def test_reservoir_is_private_and_reproducible(self):
        config = TailObsConfig(quantiles=(), threshold_s=None, reservoir=16)
        tailobs.enable(config)
        run_cluster(balancer="random", seed=5)
        first = [r.index for r in only_run().records]
        assert len(first) == 16
        tailobs.reset()
        tailobs.enable(config)
        run_cluster(balancer="random", seed=5)
        assert [r.index for r in only_run().records] == first

    def test_config_validation(self):
        with pytest.raises(ValueError, match="quantiles"):
            TailObsConfig(quantiles=(1.5,))
        with pytest.raises(ValueError, match="reservoir"):
            TailObsConfig(reservoir=-1)
        with pytest.raises(ValueError, match="burn window"):
            TailObsConfig(burn_window=0)
        with pytest.raises(ValueError, match="latency"):
            SLObjective(0.0)
        with pytest.raises(ValueError, match="target"):
            SLObjective(1e-3, target=1.0)


class TestSLO:
    def test_stats_match_hand_computation(self):
        objective = SLObjective(20e-6, target=0.99)
        tailobs.enable(TailObsConfig(slos=(objective,), burn_window=500))
        result = run_cluster(balancer="jsq", n=2_000, warmup=200)
        run = only_run()
        (stat,) = run.slos
        soj = result.sojourn_times
        over = soj > objective.latency_s
        exceed = int(np.count_nonzero(over))
        assert stat.exceedances == exceed
        assert stat.requests == soj.size
        assert stat.burn_rate == pytest.approx((exceed / soj.size) / 0.01)
        window = 500
        worst = max(
            int(over[i : i + window].sum())
            for i in range(soj.size - window + 1)
        )
        assert stat.worst_window_burn == pytest.approx(
            (worst / window) / 0.01
        )

    def test_metric_helpers(self):
        soj = np.array([1.0, 2.0, 3.0, 2.0, 1.0]) * 1e-6
        over = slo_exceedances(soj, 1.5e-6)
        assert over.tolist() == [False, True, True, True, False]
        assert burn_rate(3, 5, 0.9) == pytest.approx((3 / 5) / 0.1)
        assert burn_rate(0, 0, 0.9) == 0.0
        rng = np.random.default_rng(0)
        mask = rng.random(200) > 0.7
        for window in (1, 7, 50, 200, 500):
            w = min(window, mask.size)
            brute = max(
                int(mask[i : i + w].sum()) for i in range(mask.size - w + 1)
            )
            assert worst_window_exceedances(mask, window) == brute


class TestResultTransparency:
    @pytest.mark.parametrize("balancer", ["jsq", "power_of_two"])
    def test_simulation_identical_with_telemetry_on(self, balancer):
        """Satellite guarantee: telemetry never perturbs the dispatch
        stream — per-request sojourns (tie-break draws included) are
        byte-identical with capture on vs off."""
        off = run_cluster(balancer=balancer, seed=11)
        tailobs.enable()
        on = run_cluster(balancer=balancer, seed=11)
        assert np.array_equal(off.sojourn_times, on.sojourn_times)
        for a, b in zip(off.servers, on.servers):
            assert np.array_equal(a.wait_times, b.wait_times)
            assert np.array_equal(a.service_times, b.service_times)
        assert len(tailobs.snapshot().runs) == 1

    def test_executors_produce_equal_records(self):
        """Both executor families reconstruct the *same* telemetry for a
        state-independent policy (same records, same attribution)."""
        tailobs.enable()
        run_cluster(balancer="random", seed=3)
        vec = only_run()
        tailobs.reset()
        tailobs.enable()
        run_cluster(balancer="random", seed=3, force_event_loop=True)
        event = only_run()
        assert vec == event


class TestDegenerateDelegation:
    def test_single_server_poisson_is_recorded(self):
        tailobs.enable(
            TailObsConfig(slos=(SLObjective(15e-6, target=0.99),))
        )
        result = ClusterSimulator.at_load(0.7, SERVICE, seed=9).run(
            4_000, 400
        )
        run = only_run()
        assert run.n_servers == 1 and run.fanout == 1
        assert not run.queues_observed
        assert run.records
        for rec in run.records:
            assert rec.servers == (0,)
            assert rec.min_queue_len == 0
            assert rec.sojourn_s == result.sojourn_times[rec.index - run.warmup]
            assert rec.waits[0] + rec.services[0] == rec.sojourn_s
        for att in run.attributions:
            assert att.shares_ps["misplacement"] == 0
            assert sum(att.shares_ps.values()) == att.exceedance_ps
        (stat,) = run.slos
        assert stat.exceedances == int(
            np.count_nonzero(result.sojourn_times > 15e-6)
        )
        assert validate.check(run) == []


class TestValidationHooks:
    def test_validator_flags_broken_reconciliation(self):
        tailobs.enable()
        run_cluster(balancer="jsq")
        run = only_run()
        rec = run.records[0]
        broken = dataclasses.replace(
            run,
            records=(dataclasses.replace(rec, sojourn_s=rec.sojourn_s * 2),)
            + run.records[1:],
        )
        invariants = {v.invariant for v in validate.check(broken)}
        assert "crit-path-reconciliation" in invariants

    def test_validator_flags_broken_attribution(self):
        tailobs.enable()
        run_cluster(balancer="jsq")
        run = only_run()
        att = run.attributions[0]
        shares = dict(att.shares_ps)
        shares["service"] += 1
        broken = dataclasses.replace(
            run,
            attributions=(dataclasses.replace(att, shares_ps=shares),)
            + run.attributions[1:],
        )
        invariants = {v.invariant for v in validate.check(broken)}
        assert "attribution-conservation" in invariants


class TestWorkerDelta:
    def test_mark_delta_merge_round_trip(self):
        tailobs.enable()
        run_cluster(balancer="random", seed=1)
        before = tailobs.mark()
        run_cluster(balancer="jsq", seed=2)
        delta = tailobs.delta_since(before)
        assert len(delta.runs) == 1
        assert delta.runs[0].balancer == "jsq"
        revived = pickle.loads(pickle.dumps(delta))
        assert revived == delta
        full = tailobs.snapshot()
        tailobs.reset()
        tailobs.enable()
        run_cluster(balancer="random", seed=1)
        tailobs.merge_delta(revived)
        assert tailobs.snapshot() == full

    def test_configure_worker_starts_clean(self):
        tailobs.enable(TailObsConfig(reservoir=3))
        run_cluster(balancer="random")
        shipped = tailobs.config_for_worker()
        revived = pickle.loads(pickle.dumps(shipped))
        tailobs.configure_worker(revived)
        # Forked parent runs must not leak into the worker's delta.
        assert tailobs.snapshot().empty
        assert tailobs.is_enabled()
        assert tailobs.current_config().reservoir == 3
        tailobs.configure_worker({"enabled": False, "config": None})
        assert not tailobs.is_enabled()

    def test_pooled_sweep_reproduces_serial_telemetry(self):
        """Satellite guarantee: a pooled cluster sweep captures exactly
        the runs a serial sweep does (deltas merged in submission
        order)."""
        config = ClusterConfig(
            n_servers=4, fanout=2, balancer="jsq",
            num_requests=3_000, warmup=300,
        )
        loads = (0.4, 0.7)
        workload = wordstem()
        previous = cache.current_config()
        cache.configure(enabled=False)  # cached cells skip simulation
        try:
            tailobs.enable()
            cluster_experiment._CLUSTER_CACHE.clear()
            serial = run_cluster_sweep(
                "duplexity", workload, loads, config, workers=1
            )
            serial_snap = tailobs.snapshot()
            tailobs.reset()
            tailobs.enable()
            cluster_experiment._CLUSTER_CACHE.clear()
            pooled = run_cluster_sweep(
                "duplexity", workload, loads, config, workers=2
            )
            pooled_snap = tailobs.snapshot()
        finally:
            cluster_experiment._CLUSTER_CACHE.clear()
            cache.configure(**previous)
        assert pooled == serial
        assert not serial_snap.empty
        assert pooled_snap == serial_snap
        # Experiment-layer runs carry the ambient context labels.
        assert {run.design for run in serial_snap.runs} == {"duplexity"}
        assert {run.workload for run in serial_snap.runs} == {"WordStem"}
        assert sorted(run.load for run in serial_snap.runs) == list(loads)


class TestExportAndReport:
    def test_export_emits_cluster_records(self, tmp_path):
        from repro import obs
        from repro.obs import export

        tailobs.enable(
            TailObsConfig(slos=(SLObjective(25e-6),))
        )
        run_cluster(balancer="jsq")
        path = tmp_path / "t.jsonl"
        obs.reset()
        try:
            obs.enable(trace_path=path)
            tailobs.export_to_obs(tailobs.snapshot())
        finally:
            obs.reset()
        records = export.read_trace(path)
        kinds = {}
        for r in records:
            if r.get("type") == "cluster":
                kinds[r["kind"]] = kinds.get(r["kind"], 0) + 1
        run = only_run()
        assert kinds["run"] == 1
        assert kinds["attribution"] == len(run.attributions)
        assert kinds["slo"] == 1
        assert kinds["request"] == min(
            len(run.records), tailobs.EXPORT_RECORD_CAP
        )
        summary = export.summarize_records(records)
        assert summary.cluster_records == kinds
        text = export.render_prometheus(summary)
        assert 'repro_cluster_record_count{kind="run"} 1' in text

    def test_render_tail_report_sections(self):
        tailobs.enable(
            TailObsConfig(slos=(SLObjective(25e-6),))
        )
        with tailobs.context(design="duplexity", workload="WordStem", load=0.7):
            run_cluster(balancer="jsq")
        report = tailobs.render_tail_report(tailobs.snapshot())
        assert "cluster tail report: duplexity/WordStem load 0.7" in report
        assert "tail attribution (share of exceedance mass)" in report
        assert "SLO objectives" in report
        assert "slowest recorded requests" in report
        assert "misplacement" in report

    def test_empty_report(self):
        assert "no cluster runs" in tailobs.render_tail_report(
            tailobs.snapshot()
        )

    def test_live_totals_in_grid_stats(self):
        from repro.harness.parallel import GridRunStats
        from repro.harness.reporting import format_grid_stats

        tailobs.enable()
        run_cluster(balancer="random")
        out = format_grid_stats(GridRunStats())
        assert "tailobs.runs" in out
        assert "tailobs.records" in out
