"""Open-loop arrival processes: determinism, reduction contracts,
realized rates, and count dispersion."""

import math

import numpy as np
import pytest

from repro.cluster.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.common.rng import SeedSequenceFactory


def epochs_for(process, seed=0, n=20_000):
    return process.epochs(SeedSequenceFactory(seed), n)


PROCESSES = {
    "poisson": lambda: PoissonArrivals(1e5),
    "mmpp": lambda: MMPPArrivals.bursty(1e5),
    "diurnal": lambda: DiurnalArrivals(1e5, 0.5, 0.05),
}


@pytest.mark.parametrize("name", sorted(PROCESSES))
def test_epochs_ascending_and_deterministic(name):
    process = PROCESSES[name]()
    a = epochs_for(process, seed=7)
    b = epochs_for(process, seed=7)
    c = epochs_for(process, seed=8)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert np.all(np.diff(a) >= 0)
    assert a[0] > 0


@pytest.mark.parametrize("name", sorted(PROCESSES))
def test_realized_rate_near_offered(name):
    process = PROCESSES[name]()
    n = 50_000
    eps = epochs_for(process, n=n)
    realized = n / eps[-1]
    # Slack scales with the count dispersion, as in validation.
    noise = 6.0 * math.sqrt(process.count_dispersion(n) / n)
    assert realized == pytest.approx(process.rate(), rel=max(3 * noise, 0.02))


def test_mmpp_equal_rates_reduces_to_poisson_bitwise():
    """An MMPP whose phases share one rate accepts every candidate and
    consumes no modulation draw: epochs are bit-identical to Poisson."""
    rate = 2.5e5
    degenerate = MMPPArrivals(rates=(rate, rate), switch_rates=(10.0, 10.0))
    poisson = PoissonArrivals(rate)
    assert np.array_equal(
        epochs_for(degenerate, seed=3), epochs_for(poisson, seed=3)
    )
    assert degenerate.count_dispersion(10_000) == pytest.approx(1.0)


def test_diurnal_zero_amplitude_reduces_to_poisson_bitwise():
    rate = 2.5e5
    flat = DiurnalArrivals(rate, 0.0, 1.0)
    assert np.array_equal(
        epochs_for(flat, seed=3), epochs_for(PoissonArrivals(rate), seed=3)
    )
    assert flat.count_dispersion(10_000) == 1.0


def test_mmpp_bursty_profile_and_dispersion():
    """bursty() hits the requested long-run mean, and the asymptotic
    index of dispersion matches the closed form (73 for the default
    ratio-4, 200-arrival-dwell profile)."""
    process = MMPPArrivals.bursty(1e5, burst_ratio=4.0, mean_burst_arrivals=200.0)
    assert process.rate() == pytest.approx(1e5)
    assert process.rates[1] == pytest.approx(4.0 * process.rates[0])
    # Symmetric dwells: pi0 = pi1 = 1/2, quiet = 2R/5, burst = 8R/5,
    # s01 + s10 = R/100 => IDC = 1 + 0.5 * (6R/5)^2 / (R * R/100) = 73.
    assert process.count_dispersion(10_000) == pytest.approx(73.0)


def test_mmpp_is_actually_burstier_than_poisson():
    """Realized inter-arrival CV^2 well above 1 for the bursty profile."""
    gaps = np.diff(epochs_for(MMPPArrivals.bursty(1e5), n=100_000))
    cv2 = gaps.var() / gaps.mean() ** 2
    assert cv2 > 1.3


def test_diurnal_rate_tracks_the_sinusoid():
    """Arrival counts in the peak half-period exceed the trough's."""
    period = 0.02
    process = DiurnalArrivals(1e5, 0.8, period)
    eps = epochs_for(process, n=50_000)
    phase = np.mod(eps, period) / period
    peak = np.count_nonzero(phase < 0.5)  # sin > 0 half
    trough = np.count_nonzero(phase >= 0.5)
    assert peak > 1.5 * trough


def test_dispersion_floor():
    for name in sorted(PROCESSES):
        assert PROCESSES[name]().count_dispersion(1000) >= 1.0


@pytest.mark.parametrize(
    "build",
    [
        lambda: PoissonArrivals(0.0),
        lambda: PoissonArrivals(-1.0),
        lambda: MMPPArrivals(rates=(1.0, -1.0), switch_rates=(1.0, 1.0)),
        lambda: MMPPArrivals(rates=(1.0, 2.0), switch_rates=(0.0, 1.0)),
        lambda: MMPPArrivals.bursty(1e5, burst_ratio=0.5),
        lambda: DiurnalArrivals(1e5, 1.0, 1.0),
        lambda: DiurnalArrivals(1e5, -0.1, 1.0),
        lambda: DiurnalArrivals(1e5, 0.5, 0.0),
    ],
)
def test_invalid_parameters_raise(build):
    with pytest.raises(ValueError):
        build()
