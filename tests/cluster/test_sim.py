"""Cluster simulator: degenerate M/G/1 identity, executor equivalence,
fork-join law, balancer orderings, and validation invariants."""

import numpy as np
import pytest

from repro import validate
from repro.cluster.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.cluster.sim import (
    SERVER_STREAM_PREFIX,
    ClusterSimulator,
    _simulate_server_scalar,
)
from repro.common.distributions import Exponential, LogNormal
from repro.common.rng import SeedSequenceFactory
from repro.queueing.mg1 import DistributionService, MG1Simulator
from repro.queueing.stats import percentile
from repro.uarch import fastpath

SERVICE = Exponential(2e-6)


def result_fields(r):
    return (
        r.sojourn_times,
        [
            (s.wait_times, s.service_times, s.idle_periods, s.busy_time)
            for s in r.servers
        ],
        r.duration,
        r.arrival_rate,
    )


def assert_results_identical(a, b):
    assert np.array_equal(a.sojourn_times, b.sojourn_times)
    assert a.n_servers == b.n_servers
    for sa, sb in zip(a.servers, b.servers):
        assert np.array_equal(sa.wait_times, sb.wait_times)
        assert np.array_equal(sa.service_times, sb.service_times)
        assert np.array_equal(sa.idle_periods, sb.idle_periods)
        assert sa.busy_time == sb.busy_time
        assert sa.duration == sb.duration
        assert sa.arrival_rate == sb.arrival_rate
    assert a.duration == b.duration
    assert a.arrival_rate == b.arrival_rate


class TestDegenerateDelegation:
    def test_single_server_fanout_one_is_mg1_bytewise(self):
        """The acceptance identity: a 1-server fanout-1 Poisson cluster
        is byte-for-byte the existing M/G/1 path."""
        mg1 = MG1Simulator.at_load(0.7, SERVICE, seed=9).run(20_000, 2_000)
        cluster = ClusterSimulator.at_load(0.7, SERVICE, seed=9).run(
            20_000, 2_000
        )
        assert cluster.n_servers == 1
        (server,) = cluster.servers
        assert np.array_equal(server.wait_times, mg1.wait_times)
        assert np.array_equal(server.service_times, mg1.service_times)
        assert np.array_equal(server.idle_periods, mg1.idle_periods)
        assert server.busy_time == mg1.busy_time
        assert server.duration == mg1.duration
        assert server.arrival_rate == mg1.arrival_rate
        assert np.array_equal(cluster.sojourn_times, mg1.sojourn_times)
        assert cluster.duration == mg1.duration

    def test_non_poisson_single_server_not_delegated(self):
        """A bursty 1-server cluster must run the real cluster path (it
        cannot reuse the Poisson M/G/1 stream layout)."""
        arrivals = MMPPArrivals.bursty(0.7 / SERVICE.mean())
        result = ClusterSimulator(arrivals, SERVICE, seed=1).run(5_000, 500)
        assert result.arrival_dispersion > 1.0


class TestExecutorEquivalence:
    @pytest.mark.parametrize("balancer", ["random", "round_robin"])
    @pytest.mark.parametrize("fanout", [1, 2])
    def test_per_server_equals_event_loop(self, balancer, fanout):
        """Both executors produce bit-identical results for
        state-independent policies (same float ops, same streams)."""
        fastpath.set_mode("off")
        try:
            make = lambda: ClusterSimulator.at_load(
                0.6, SERVICE, n_servers=4, fanout=fanout,
                balancer=balancer, seed=13,
            )
            vectorized = make().run(4_000, 400)
            forced = ClusterSimulator.at_load(
                0.6, SERVICE, n_servers=4, fanout=fanout,
                balancer=balancer, seed=13, force_event_loop=True,
            )
            event = forced.run(4_000, 400)
        finally:
            fastpath.set_mode(None)
        assert_results_identical(vectorized, event)

    def test_fork_join_max_matches_manual_recurrence(self):
        """fanout == n_servers with round-robin: every server sees every
        epoch, so the cluster sojourn is the max over manually-run
        per-server recurrences on the shared arrival stream."""
        fastpath.set_mode("off")
        try:
            sim = ClusterSimulator.at_load(
                0.5, SERVICE, n_servers=3, fanout=3,
                balancer="round_robin", seed=4,
            )
            result = sim.run(2_000, 200)
        finally:
            fastpath.set_mode(None)
        streams = SeedSequenceFactory(4)
        epochs = sim.arrivals.epochs(SeedSequenceFactory(4), 2_000)
        service = DistributionService(SERVICE)
        per_server = []
        for i in range(3):
            rng = streams.get(f"{SERVER_STREAM_PREFIX}{i}")
            waits, services, _, _ = _simulate_server_scalar(
                np.ascontiguousarray(epochs), service, rng, 200
            )
            per_server.append(waits + services)
        expected = np.max(np.stack(per_server), axis=0)[200:]
        assert np.array_equal(result.sojourn_times, expected)


@pytest.mark.skipif(
    not fastpath.is_available(), reason="no C compiler for the fastpath kernel"
)
class TestFastpathIdentity:
    @pytest.mark.parametrize("balancer", ["random", "round_robin"])
    def test_compiled_equals_scalar(self, balancer):
        try:
            make = lambda: ClusterSimulator.at_load(
                0.7, LogNormal(3e-6, 1.5), n_servers=4, fanout=2,
                balancer=balancer, seed=21,
            )
            fastpath.set_mode("off")
            ref = make().run(8_000, 800)
            fastpath.set_mode("on")
            fast = make().run(8_000, 800)
        finally:
            fastpath.set_mode(None)
        assert ref.fastpath_servers == 0
        assert fast.fastpath_servers == 4
        assert_results_identical(ref, fast)


class TestBalancerOrdering:
    def test_jsq_tail_not_worse_than_random(self):
        """S4: JSQ's p99 must not exceed random's beyond noise at a load
        where queueing matters."""
        n, warmup = 40_000, 4_000
        p99 = {}
        for balancer in ("random", "jsq"):
            result = ClusterSimulator.at_load(
                0.7, SERVICE, n_servers=8, fanout=1,
                balancer=balancer, seed=3,
            ).run(n, warmup)
            p99[balancer] = percentile(result.sojourn_times, 0.99)
        # JSQ beats random decisively at rho = 0.7; 10% headroom covers
        # seed noise without weakening the ordering claim.
        assert p99["jsq"] <= p99["random"] * 1.1
        assert p99["jsq"] < p99["random"]

    def test_jsq_balances_utilization_tighter_than_random(self):
        spreads = {}
        for balancer in ("random", "jsq"):
            result = ClusterSimulator.at_load(
                0.6, SERVICE, n_servers=8, balancer=balancer, seed=5
            ).run(20_000, 2_000)
            spreads[balancer] = result.utilization_spread
        assert spreads["jsq"] < spreads["random"]


class TestSeedingAndWindows:
    def test_same_seed_reproducible_different_seed_not(self):
        make = lambda seed: ClusterSimulator.at_load(
            0.6, SERVICE, n_servers=4, fanout=2, seed=seed
        ).run(2_000, 200)
        assert_results_identical(make(11), make(11))
        assert not np.array_equal(make(11).sojourn_times, make(12).sojourn_times)

    @pytest.mark.parametrize("n,warmup", [(2, 0), (100, 99), (500, 0)])
    @pytest.mark.parametrize("balancer", ["random", "jsq"])
    def test_window_edge_cases_run(self, n, warmup, balancer):
        result = ClusterSimulator.at_load(
            0.6, SERVICE, n_servers=3, balancer=balancer, seed=1
        ).run(n, warmup)
        assert result.num_requests == n - warmup
        assert result.duration > 0
        for server in result.servers:
            assert server.duration == result.duration

    def test_mean_utilization_tracks_offered_load(self):
        result = ClusterSimulator.at_load(
            0.6, SERVICE, n_servers=4, fanout=2, seed=2
        ).run(40_000, 4_000)
        assert result.utilizations.mean() == pytest.approx(0.6, rel=0.05)

    def test_argument_validation(self):
        with pytest.raises(ValueError, match="fan-out"):
            ClusterSimulator(1e5, SERVICE, n_servers=2, fanout=3)
        with pytest.raises(ValueError, match="server"):
            ClusterSimulator(1e5, SERVICE, n_servers=0)
        with pytest.raises(ValueError, match="load"):
            ClusterSimulator.at_load(1.2, SERVICE)
        sim = ClusterSimulator(1e5, SERVICE)
        with pytest.raises(ValueError, match="positive"):
            sim.run(0)
        with pytest.raises(ValueError, match="warmup"):
            sim.run(10, warmup=10)


class TestValidationInvariants:
    @pytest.mark.parametrize(
        "balancer,arrivals",
        [
            ("random", None),
            ("jsq", None),
            ("power_of_two", None),
            ("round_robin", None),
            ("random", lambda rate: MMPPArrivals.bursty(rate)),
            ("jsq", lambda rate: DiurnalArrivals(rate, 0.5, 0.01)),
        ],
    )
    def test_strict_validation_clean(self, balancer, arrivals):
        """Per-server queue laws plus cluster-wide Little's law and work
        conservation hold on every topology/traffic combination."""
        result = ClusterSimulator.at_load(
            0.6, SERVICE, n_servers=4, fanout=2,
            balancer=balancer, seed=6, arrivals=arrivals,
        ).run(20_000, 2_000)
        violations = validate.check(result, subject="test-cluster")
        assert violations == []

    def test_validation_flags_window_mismatch(self):
        import dataclasses

        result = ClusterSimulator.at_load(
            0.6, SERVICE, n_servers=2, seed=0
        ).run(2_000, 200)
        broken = dataclasses.replace(
            result,
            servers=(
                result.servers[0],
                dataclasses.replace(
                    result.servers[1], duration=result.duration * 2
                ),
            ),
        )
        invariants = {v.invariant for v in validate.check(broken)}
        assert "shared-window" in invariants
