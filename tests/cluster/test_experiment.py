"""Cluster experiment cells: caching, sweep determinism, validation."""

import dataclasses

import pytest

import repro.cluster.experiment as cluster_experiment
from repro import validate
from repro.cluster.arrivals import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.cluster.experiment import (
    ClusterConfig,
    arrival_process_for,
    run_cluster_cell,
    run_cluster_sweep,
)
from repro.harness import cache
from repro.harness.fidelity import FAST
from repro.harness.parallel import GridRunStats
from repro.workloads.microservices import wordstem

SMALL = ClusterConfig(
    n_servers=4, fanout=2, balancer="random", num_requests=6_000, warmup=600
)


@pytest.fixture(autouse=True)
def _fresh_l1():
    cluster_experiment._CLUSTER_CACHE.clear()
    yield
    cluster_experiment._CLUSTER_CACHE.clear()


@pytest.fixture()
def workload():
    return wordstem()


def test_config_validation():
    with pytest.raises(ValueError, match="unknown balancer"):
        ClusterConfig(balancer="lru")
    with pytest.raises(ValueError, match="unknown arrival"):
        ClusterConfig(arrivals="pareto")


def test_requests_default_to_fidelity():
    assert ClusterConfig().requests_for(FAST) == (
        FAST.queue_requests,
        FAST.queue_warmup,
    )
    assert SMALL.requests_for(FAST) == (6_000, 600)


def test_arrival_process_factory():
    assert isinstance(
        arrival_process_for(ClusterConfig(), 1e5, 1000), PoissonArrivals
    )
    mmpp = arrival_process_for(ClusterConfig(arrivals="mmpp"), 1e5, 1000)
    assert isinstance(mmpp, MMPPArrivals)
    assert mmpp.rate() == pytest.approx(1e5)
    diurnal = arrival_process_for(
        ClusterConfig(arrivals="diurnal", diurnal_periods=8.0), 1e5, 1000
    )
    assert isinstance(diurnal, DiurnalArrivals)
    # One run spans diurnal_periods full periods.
    assert diurnal.period_s == pytest.approx((1000 / 1e5) / 8.0)


def test_cell_passes_strict_validation(workload):
    cell = run_cluster_cell("duplexity", workload, 0.6, SMALL)
    assert validate.check(cell) == []
    assert cell.design_name == "duplexity"
    assert cell.n_servers == 4 and cell.fanout == 2
    assert cell.p999_us >= cell.p99_us > 0
    assert 0 < cell.mean_utilization < 1
    assert cell.requests_per_watt > 0


def test_load_bounds(workload):
    with pytest.raises(ValueError, match="load"):
        run_cluster_cell("duplexity", workload, 1.5, SMALL)


def test_l1_cache_returns_identical_cell(workload):
    a = run_cluster_cell("duplexity", workload, 0.5, SMALL)
    b = run_cluster_cell("duplexity", workload, 0.5, SMALL)
    assert a == b


def test_l2_round_trip(workload, tmp_path):
    previous = cache.current_config()
    cache.configure(enabled=True, root=tmp_path)
    try:
        a = run_cluster_cell("duplexity", workload, 0.5, SMALL)
        cluster_experiment._CLUSTER_CACHE.clear()
        b = run_cluster_cell("duplexity", workload, 0.5, SMALL)
    finally:
        cache.configure(**previous)
    assert a == b


def test_distinct_configs_do_not_alias(workload):
    a = run_cluster_cell("duplexity", workload, 0.5, SMALL)
    b = run_cluster_cell(
        "duplexity", workload, 0.5, dataclasses.replace(SMALL, balancer="jsq")
    )
    assert a != b


def test_sweep_pooled_equals_serial(workload):
    loads = (0.3, 0.5, 0.7)
    serial = run_cluster_sweep("duplexity", workload, loads, SMALL, workers=1)
    cluster_experiment._CLUSTER_CACHE.clear()
    stats = GridRunStats()
    pooled = run_cluster_sweep(
        "duplexity", workload, loads, SMALL, workers=3, stats=stats
    )
    assert pooled == serial
    assert [c.load for c in serial] == list(loads)
    assert stats.cells == 3
    assert stats.wall_s > 0


def test_saturating_load_is_clamped(workload):
    """A load whose inflated rho would exceed SATURATION_RHO still
    completes with a finite tail (the offered rate is clamped, exactly
    like the single-server tail path)."""
    cell = run_cluster_cell(
        "duplexity",
        workload,
        0.99,
        dataclasses.replace(SMALL, num_requests=3_000, warmup=300),
    )
    assert validate.check(cell) == []
