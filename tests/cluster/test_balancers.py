"""Load-balancer policies: distinctness, determinism, and selection laws."""

import numpy as np
import pytest

from repro.cluster.balancers import (
    BALANCERS,
    JSQBalancer,
    PowerOfTwoBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    get_balancer,
)


def test_registry_and_lookup():
    assert set(BALANCERS) == {"random", "round_robin", "jsq", "power_of_two"}
    assert isinstance(get_balancer("jsq"), JSQBalancer)
    instance = RandomBalancer()
    assert get_balancer(instance) is instance
    with pytest.raises(ValueError, match="unknown balancer"):
        get_balancer("lru")


def test_state_dependence_flags():
    assert not RandomBalancer.state_dependent
    assert not RoundRobinBalancer.state_dependent
    assert JSQBalancer.state_dependent
    assert PowerOfTwoBalancer.state_dependent


@pytest.mark.parametrize("fanout", [1, 2, 4])
def test_random_assignments_distinct_and_in_range(fanout):
    assign = RandomBalancer().assignments(
        np.random.default_rng(0), n=500, fanout=fanout, n_servers=4
    )
    assert assign.shape == (500, fanout)
    assert assign.min() >= 0 and assign.max() < 4
    for row in assign:
        assert len(set(row.tolist())) == fanout


def test_random_assignments_cover_all_servers():
    assign = RandomBalancer().assignments(
        np.random.default_rng(1), n=2000, fanout=1, n_servers=8
    )
    counts = np.bincount(assign.ravel(), minlength=8)
    assert counts.min() > 0
    # Roughly uniform: no server off by more than 4 sigma.
    expected = 2000 / 8
    assert np.all(np.abs(counts - expected) < 4 * np.sqrt(expected))


def test_round_robin_exact_pattern():
    assign = RoundRobinBalancer().assignments(
        np.random.default_rng(0), n=5, fanout=2, n_servers=3
    )
    assert assign.tolist() == [[0, 1], [2, 0], [1, 2], [0, 1], [2, 0]]
    with pytest.raises(NotImplementedError):
        RoundRobinBalancer().select(np.random.default_rng(0), 1, 3, np.zeros(3))


def test_jsq_selects_shortest_queues():
    rng = np.random.default_rng(0)
    queues = np.array([5, 0, 3, 1])
    chosen = JSQBalancer().select(rng, fanout=2, n_servers=4, queue_lengths=queues)
    assert sorted(chosen.tolist()) == [1, 3]


def test_jsq_ties_break_uniformly():
    """All-equal queues: every server is picked, none systematically."""
    rng = np.random.default_rng(0)
    queues = np.zeros(4, dtype=np.int64)
    picks = [
        int(JSQBalancer().select(rng, 1, 4, queues)[0]) for _ in range(2000)
    ]
    counts = np.bincount(picks, minlength=4)
    assert counts.min() > 0
    assert np.all(np.abs(counts - 500) < 4 * np.sqrt(500))


def test_power_of_two_prefers_short_queues():
    rng = np.random.default_rng(0)
    queues = np.array([50, 0, 0, 0])
    picks = [
        int(PowerOfTwoBalancer().select(rng, 1, 4, queues)[0])
        for _ in range(1000)
    ]
    # Server 0 only wins when both probes land on it — impossible with
    # distinct probes — so it is never chosen while others are empty.
    assert picks.count(0) == 0


def test_power_of_two_distinct_within_request():
    rng = np.random.default_rng(3)
    queues = np.zeros(6, dtype=np.int64)
    for _ in range(200):
        chosen = PowerOfTwoBalancer().select(rng, 4, 6, queues)
        assert len(set(chosen.tolist())) == 4


def test_state_independent_assignments_deterministic():
    for name in ("random", "round_robin"):
        a = get_balancer(name).assignments(np.random.default_rng(5), 100, 2, 4)
        b = get_balancer(name).assignments(np.random.default_rng(5), 100, 2, 4)
        assert np.array_equal(a, b)


def _reference_power_of_two_select(rng, fanout, n_servers, queue_lengths):
    """The pre-optimization PowerOfTwoBalancer.select: a materialized
    ordered pool with ``list.remove`` — the draw-sequence reference the
    production implementation must match byte-for-byte."""
    available = list(range(n_servers))
    chosen = np.empty(fanout, dtype=np.int64)
    for i in range(fanout):
        if len(available) <= 2:
            probes = available
        else:
            picks = rng.choice(len(available), size=2, replace=False)
            probes = [available[picks[0]], available[picks[1]]]
        best = probes[0]
        for candidate in probes[1:]:
            if queue_lengths[candidate] < queue_lengths[best] or (
                queue_lengths[candidate] == queue_lengths[best]
                and rng.random() < 0.5
            ):
                best = candidate
        chosen[i] = best
        available.remove(best)
    return chosen


def test_power_of_two_select_matches_reference_pool_byte_for_byte():
    """The O(fanout^2) sorted-removed implementation consumes the
    dispatch stream draw-for-draw like the O(fanout*n) list pool and
    returns the same servers, so results stay byte-identical."""
    balancer = PowerOfTwoBalancer()
    for seed in range(25):
        rng_new = np.random.default_rng(seed)
        rng_ref = np.random.default_rng(seed)
        for fanout, n_servers in (
            (1, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 8), (8, 16), (16, 16),
        ):
            queues = np.random.default_rng(seed * 31 + n_servers).integers(
                0, 4, size=n_servers
            )
            got = balancer.select(rng_new, fanout, n_servers, queues)
            want = _reference_power_of_two_select(
                rng_ref, fanout, n_servers, queues
            )
            assert np.array_equal(got, want), (seed, fanout, n_servers)
        # Same number and kind of draws: the streams end in lockstep.
        assert (
            rng_new.bit_generator.state == rng_ref.bit_generator.state
        )
