"""Area/power/frequency models (Table II calibration)."""

import math

import pytest

from repro.common.params import (
    L0D_CONFIG,
    L0I_CONFIG,
    L1D_CONFIG,
    LLC_CONFIG_PER_CORE,
    TABLE_II_AREA_MM2,
    TABLE_II_FREQUENCY_GHZ,
    TLBConfig,
)
from repro.power.cacti import (
    cache_area_mm2,
    cache_read_energy_nj,
    sram_area_mm2,
    tlb_area_mm2,
)
from repro.power.frequency import design_frequency_ghz
from repro.power.mcpat import (
    AREA_FRACTIONS,
    STATIC_W_PER_MM2,
    core_power_model,
    design_area_mm2,
    lender_power_model,
    llc_area_mm2,
    llc_static_w,
    master_core_overheads_mm2,
    replication_overheads_mm2,
)


class TestCacti:
    def test_llc_density_matches_table(self):
        # 3.9 mm^2 per MB (Table II).
        assert cache_area_mm2(LLC_CONFIG_PER_CORE) == pytest.approx(3.9, rel=0.15)

    def test_area_scales_with_size(self):
        small = sram_area_mm2(8 * 1024)
        big = sram_area_mm2(64 * 1024)
        assert big == pytest.approx(8 * small)

    def test_ports_cost_area(self):
        assert sram_area_mm2(8 * 1024, ports=2) > sram_area_mm2(8 * 1024, ports=1)

    def test_l0_cheaper_than_l1(self):
        assert cache_area_mm2(L0D_CONFIG) < cache_area_mm2(L1D_CONFIG)

    def test_read_energy_ordering(self):
        assert (
            cache_read_energy_nj(L0I_CONFIG)
            < cache_read_energy_nj(L1D_CONFIG)
            < cache_read_energy_nj(LLC_CONFIG_PER_CORE)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            sram_area_mm2(0)
        with pytest.raises(ValueError):
            sram_area_mm2(1024, ports=0)


class TestMcpat:
    def test_table_ii_areas_exact(self):
        assert design_area_mm2("baseline") == 12.1
        assert design_area_mm2("smt") == 12.2
        assert design_area_mm2("morphcore") == 12.4
        assert design_area_mm2("duplexity") == 12.7
        assert design_area_mm2("duplexity_replication") == 16.7
        assert design_area_mm2("lender_core") == 5.5

    def test_unknown_design(self):
        with pytest.raises(ValueError):
            design_area_mm2("vliw")

    def test_area_fractions_sum_to_one(self):
        assert sum(AREA_FRACTIONS.values()) == pytest.approx(1.0)

    def test_master_overheads_reproduce_5_percent(self):
        # Section V: "total area overhead of the master-core is
        # approximately 5% compared to a baseline 4-wide OoO core".
        total = sum(master_core_overheads_mm2().values())
        assert total / 12.1 == pytest.approx(0.05, abs=0.012)

    def test_component_overheads_match_paper(self):
        oh = master_core_overheads_mm2()
        base = 12.1
        assert oh["morph_muxes"] / base == pytest.approx(0.02, abs=0.005)
        assert oh["filler_tlbs"] / base == pytest.approx(0.007, abs=0.003)
        assert oh["filler_predictor"] / base == pytest.approx(0.012, abs=0.004)
        assert oh["l0_caches"] / base == pytest.approx(0.01, abs=0.004)

    def test_replication_overhead_near_38_percent(self):
        # "a master-core variant that replicates all stateful structures,
        # including L1 caches, incurs a 38% area overhead".
        total = sum(replication_overheads_mm2().values())
        assert total / 12.1 == pytest.approx(0.38, abs=0.05)

    def test_tlb_area_positive(self):
        assert tlb_area_mm2(TLBConfig()) > 0

    def test_llc_model(self):
        assert llc_area_mm2(2.0) == pytest.approx(7.8)
        assert llc_static_w(2.0) > 0

    def test_power_model_components(self):
        core = core_power_model("baseline")
        idle = core.power_w(0.0)
        busy = core.power_w(4 * 3.4e9)
        assert idle == pytest.approx(core.static_w)
        assert busy > idle

    def test_inorder_epi_cheaper(self):
        core = core_power_model("duplexity")
        rate = 3e9
        assert core.power_w(ooo_ips=rate) > core.power_w(
            ooo_ips=0.0, inorder_ips=rate
        )

    def test_lender_always_inorder(self):
        lender = lender_power_model()
        rate = 3e9
        assert lender.power_w(ooo_ips=rate) == pytest.approx(
            lender.power_w(ooo_ips=0.0, inorder_ips=rate)
        )

    def test_lender_at_zero_inorder_ips_is_static_only(self):
        # The edge the energy plane leans on: an idle lender burns
        # exactly its leakage — no dynamic floor sneaks in.
        lender = lender_power_model()
        assert lender.power_w(ooo_ips=0.0, inorder_ips=0.0) == lender.static_w
        assert lender.static_w > 0

    @pytest.mark.parametrize("megabytes", [0.5, 1.0, 2.0, 8.0])
    def test_llc_static_consistent_with_density(self, megabytes):
        # llc_static_w must track the area model and the shared leakage
        # density (SRAM discounted to 40% of logic), not drift on its
        # own constant.
        assert llc_static_w(megabytes) == pytest.approx(
            llc_area_mm2(megabytes) * STATIC_W_PER_MM2 * 0.4
        )
        assert llc_static_w(2 * megabytes) == pytest.approx(
            2 * llc_static_w(megabytes)
        )

    @pytest.mark.parametrize(
        "design",
        ["baseline", "smt", "morphcore", "duplexity", "duplexity_replication"],
    )
    def test_power_monotone_in_both_rates(self, design):
        # Property: power_w is (strictly) monotone in each instruction
        # rate with the other held fixed, across the rate grid.
        model = core_power_model(design)
        rates = [0.0, 1e8, 1e9, 4e9, 1.6e10]
        for fixed in rates:
            ooo_curve = [model.power_w(r, fixed) for r in rates]
            ino_curve = [model.power_w(fixed, r) for r in rates]
            for lo, hi in zip(ooo_curve, ooo_curve[1:]):
                assert hi > lo
            for lo, hi in zip(ino_curve, ino_curve[1:]):
                assert hi > lo


class TestFrequency:
    def test_table_ii_frequencies_exact(self):
        for name, row in [
            ("baseline", "baseline"),
            ("smt", "smt"),
            ("smt_plus", "smt"),
            ("morphcore", "morphcore"),
            ("morphcore_plus", "morphcore"),
            ("duplexity", "master_core"),
            ("duplexity_replication", "master_core_replication"),
            ("lender_core", "lender_core"),
        ]:
            assert design_frequency_ghz(name) == TABLE_II_FREQUENCY_GHZ[row], name

    def test_penalties_ordered(self):
        assert (
            design_frequency_ghz("baseline")
            > design_frequency_ghz("smt")
            > design_frequency_ghz("morphcore")
            > design_frequency_ghz("duplexity")
        )

    def test_unknown(self):
        with pytest.raises(ValueError):
            design_frequency_ghz("quantum")
