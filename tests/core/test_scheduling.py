"""OS/cluster scheduling layer (Section IV)."""

import pytest

from repro.core.scheduling import (
    MAX_CONTEXTS_PER_DYAD,
    BatchJob,
    ClusterScheduler,
    Service,
    contexts_to_provision,
)


class TestProvisioningRule:
    def test_no_batch_stalls_with_master_stalls(self):
        # "If batch threads do not incur us-scale stalls, 16 batch threads
        # are sufficient; eight each to fill contexts on the lender and
        # master-cores."
        assert contexts_to_provision(0.0, master_stalls=True) == 16

    def test_no_batch_stalls_no_master_stalls(self):
        assert contexts_to_provision(0.0, master_stalls=False) == 8

    def test_only_batch_stalls(self):
        # "If only batch threads incur us-scale stalls ... 21 threads are
        # sufficient to occupy the lender-core."
        assert contexts_to_provision(0.5, master_stalls=False) == 21

    def test_both_stall_uses_full_pool(self):
        # "32 virtual contexts per dyad are sufficient ... in our most
        # pessimistic scenarios."
        assert contexts_to_provision(0.5, master_stalls=True) == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            contexts_to_provision(1.5, master_stalls=True)


class TestClusterScheduler:
    def test_service_placement_one_per_dyad(self):
        sched = ClusterScheduler(2)
        a = sched.place_service(Service("mcrouter"))
        b = sched.place_service(Service("wordstem", incurs_stalls=False))
        assert a.index != b.index
        with pytest.raises(RuntimeError):
            sched.place_service(Service("third"))

    def test_batch_spread_over_dyads(self):
        sched = ClusterScheduler(2)
        placement = sched.submit_batch(BatchJob("pagerank", threads=40))
        assert sum(placement.values()) == 40
        assert len(placement) == 2

    def test_capacity_enforced_with_rollback(self):
        # A serviceless dyad with stall-prone batch provisions 21 contexts
        # (the "only batch threads stall" rule), so 22 threads cannot fit.
        sched = ClusterScheduler(1)
        with pytest.raises(RuntimeError):
            sched.submit_batch(BatchJob("huge", threads=22))
        # Rollback leaves the pool clean.
        assert sched.total_free_contexts() == 21
        assert sched.dyads[0].batch_assignments == {}

    def test_complete_batch_frees_contexts(self):
        sched = ClusterScheduler(1)
        sched.submit_batch(BatchJob("pr", threads=10))
        before = sched.total_free_contexts()
        freed = sched.complete_batch("pr")
        assert freed == 10
        assert sched.total_free_contexts() == before + 10

    def test_provisioning_reacts_to_service(self):
        sched = ClusterScheduler(1)
        sched.place_service(Service("mcrouter", incurs_stalls=True))
        sched.submit_batch(BatchJob("pr", threads=4, stall_probability=0.5))
        assert sched.dyads[0].provisioned_contexts == 32

    def test_stall_free_batch_provisions_less(self):
        sched = ClusterScheduler(1)
        sched.submit_batch(BatchJob("cpu-bound", threads=4, stall_probability=0.0))
        assert sched.dyads[0].provisioned_contexts == 8
        assert sched.dyads[0].parked_contexts == MAX_CONTEXTS_PER_DYAD - 8

    def test_never_unprovision_in_use(self):
        sched = ClusterScheduler(1)
        sched.submit_batch(BatchJob("heavy", threads=20, stall_probability=0.5))
        # A later stall-free job must not shrink the pool below usage.
        sched.submit_batch(BatchJob("light", threads=1, stall_probability=0.0))
        assert sched.dyads[0].provisioned_contexts >= 21

    def test_summary_rows(self):
        sched = ClusterScheduler(2)
        sched.place_service(Service("rsc"))
        rows = sched.utilization_summary()
        assert rows[0][1] == "rsc"
        assert rows[1][1] == "-"

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterScheduler(0)
        with pytest.raises(ValueError):
            BatchJob("x", threads=0)
        with pytest.raises(ValueError):
            BatchJob("x", threads=1, stall_probability=2.0)
