"""Chip-level composition (Fig 4c)."""

import pytest

from repro.core.chip import DuplexityChip, DyadAssignment
from repro.workloads.microservices import mcrouter, wordstem
from tests.harness.test_measure import TINY


@pytest.fixture(scope="module")
def chip_report():
    chip = DuplexityChip("duplexity", num_dyads=4, fidelity=TINY)
    chip.assign(mcrouter(), 0.5)
    chip.assign(wordstem(), 0.5)
    return chip.report()


def test_report_covers_assigned_dyads(chip_report):
    assert len(chip_report.dyads) == 2
    assert {d.workload_name for d in chip_report.dyads} == {"McRouter", "WordStem"}


def test_area_scales_with_dyads():
    small = DuplexityChip("duplexity", num_dyads=2, fidelity=TINY)
    large = DuplexityChip("duplexity", num_dyads=8, fidelity=TINY)
    assert large.area_mm2 == pytest.approx(4 * small.area_mm2)
    # 12.7 (master) + 5.5 (lender) + 7.8 (2 MB LLC) per dyad.
    assert small.area_mm2 == pytest.approx(2 * 26.0)


def test_aggregate_metrics_positive(chip_report):
    assert chip_report.total_ips > 0
    assert 0 < chip_report.mean_utilization <= 1
    assert chip_report.power_w > 0
    assert chip_report.performance_density > 0
    assert 0 < chip_report.energy_per_instruction_nj < 100


def test_nic_ports_modest(chip_report):
    assert chip_report.nic_ports_needed == 1


def test_idle_dyads_leak_static_power():
    busy = DuplexityChip("duplexity", num_dyads=2, fidelity=TINY)
    busy.assign(wordstem(), 0.5)
    sparse = DuplexityChip("duplexity", num_dyads=6, fidelity=TINY)
    sparse.assign(wordstem(), 0.5)
    assert sparse.report().power_w > busy.report().power_w


def test_assignment_capacity():
    chip = DuplexityChip("duplexity", num_dyads=1, fidelity=TINY)
    chip.assign(wordstem(), 0.5)
    with pytest.raises(RuntimeError):
        chip.assign(mcrouter(), 0.5)


def test_report_requires_assignment():
    with pytest.raises(RuntimeError):
        DuplexityChip(num_dyads=1, fidelity=TINY).report()


def test_validation():
    with pytest.raises(ValueError):
        DuplexityChip(num_dyads=0)
    with pytest.raises(ValueError):
        DyadAssignment(workload=wordstem(), load=1.5)
