"""DyadResult metric arithmetic (no simulation)."""

import pytest

from repro.core.dyad import DyadResult


def result(**overrides):
    defaults = dict(
        design_name="duplexity",
        total_cycles=10_000,
        master_instructions=5_000,
        filler_instructions=12_000,
        stall_cycles=4_000,
        morph_overhead_cycles=400,
        restart_overhead_cycles=200,
        stall_windows=4,
        morphed_windows=4,
        width=4,
    )
    defaults.update(overrides)
    return DyadResult(**defaults)


def test_utilization():
    r = result()
    assert r.utilization == pytest.approx((5000 + 12_000) / (4 * 10_000))


def test_master_only_utilization():
    assert result().master_only_utilization == pytest.approx(5000 / 40_000)


def test_master_ipc():
    assert result().master_ipc == pytest.approx(0.5)


def test_compute_cycles_exclude_stall_and_restart():
    r = result()
    assert r.master_compute_cycles == 10_000 - 4_000 - 200


def test_compute_ipc():
    r = result()
    assert r.master_compute_ipc == pytest.approx(5000 / 5800)


def test_filler_ipc_in_windows():
    r = result()
    assert r.filler_ipc_in_windows == pytest.approx(12_000 / 3_600)


def test_stall_fraction():
    assert result().stall_fraction == pytest.approx(0.4)


def test_zero_cycles_guarded():
    r = result(total_cycles=0)
    assert r.utilization == 0.0
    assert r.master_ipc == 0.0
    assert r.stall_fraction == 0.0


def test_no_windows_no_filler_rate():
    r = result(stall_cycles=0, morph_overhead_cycles=0, filler_instructions=0)
    assert r.filler_ipc_in_windows == 0.0
