"""Design registry."""

import pytest

from repro.core.designs import DESIGN_NAMES, all_designs, get_design


def test_seven_designs():
    assert len(DESIGN_NAMES) == 7
    assert len(all_designs()) == 7


def test_canonical_order_matches_paper():
    assert DESIGN_NAMES == (
        "baseline",
        "smt",
        "smt_plus",
        "morphcore",
        "morphcore_plus",
        "duplexity_replication",
        "duplexity",
    )


def test_unknown_design():
    with pytest.raises(ValueError):
        get_design("hyperthreading")


def test_baseline_properties():
    d = get_design("baseline")
    assert not d.morphs
    assert not d.is_smt
    assert d.filler_cache_policy == "none"
    assert d.frequency_ghz == 3.4


def test_smt_designs():
    smt = get_design("smt")
    assert smt.is_smt
    assert smt.smt_fetch_policy == "icount"
    plus = get_design("smt_plus")
    assert plus.smt_fetch_policy == "priority"
    assert plus.smt_config().corunner_storage_cap == 0.30


def test_morphcore_vs_duplexity_restart():
    morph = get_design("morphcore")
    dup = get_design("duplexity")
    assert morph.restart_cycles > dup.restart_cycles
    assert dup.restart_cycles == 50  # Section III-B4

    assert not morph.hsmt
    assert get_design("morphcore_plus").hsmt
    assert dup.hsmt


def test_filler_cache_policies():
    assert get_design("morphcore").filler_cache_policy == "master"
    assert get_design("morphcore_plus").filler_cache_policy == "master"
    assert get_design("duplexity_replication").filler_cache_policy == "replicated"
    assert get_design("duplexity").filler_cache_policy == "lender"


def test_areas_from_table_ii():
    assert get_design("baseline").area_mm2 == 12.1
    assert get_design("duplexity").area_mm2 == 12.7
    assert get_design("duplexity_replication").area_mm2 == 16.7


def test_frequencies_from_table_ii():
    assert get_design("duplexity").frequency_ghz == 3.25
    assert get_design("morphcore").frequency_ghz == 3.3


def test_smt_config_rejected_for_non_smt():
    with pytest.raises(ValueError):
        get_design("duplexity").smt_config()


def test_ooo_config_uses_design_clock():
    cfg = get_design("duplexity").ooo_config()
    assert cfg.frequency_hz == pytest.approx(3.25e9)
