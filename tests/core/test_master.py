"""Master-core complex construction per design variant."""

import numpy as np
import pytest

from repro.caches.cache import SetAssociativeCache
from repro.common.params import LenderCoreConfig
from repro.core.designs import get_design
from repro.core.master import MasterCoreComplex
from repro.core.server import dyad_llc_config
from repro.uarch.cores import LenderCoreModel
from repro.workloads.filler import filler_trace
from repro.workloads.microservices import mcrouter


def build(design_name, with_lender=True):
    design = get_design(design_name)
    llc = SetAssociativeCache(dyad_llc_config(), "llc")
    lender = LenderCoreModel(LenderCoreConfig(), llc=llc) if with_lender else None
    return (
        MasterCoreComplex(
            design, llc=llc, lender_stack=lender.stack if lender else None
        ),
        lender,
    )


class TestVariantStructure:
    def test_baseline_has_no_filler_side(self):
        mc, _ = build("baseline")
        assert mc.filler_engine is None
        assert mc.l0i is None

    def test_smt_designs_rejected(self):
        with pytest.raises(ValueError):
            build("smt")

    def test_morphcore_shares_master_structures(self):
        mc, _ = build("morphcore")
        master_ports = mc.master_stack.ports()
        assert mc.filler_ports.dhier is master_ports.dhier
        assert mc.filler_ports.predictor is master_ports.predictor
        assert mc.l0i is None

    def test_replication_gets_private_structures(self):
        mc, _ = build("duplexity_replication")
        master_ports = mc.master_stack.ports()
        assert mc.filler_ports.dhier is not master_ports.dhier
        assert mc.filler_ports.predictor is not master_ports.predictor
        assert mc.filler_ports.itlb is not master_ports.itlb
        # Replicated L1s are private caches, not the lender's.
        assert mc.l0i is None

    def test_duplexity_l0_into_lender_l1(self):
        mc, lender = build("duplexity")
        assert mc.l0i is not None and mc.l0d is not None
        assert mc.l0i.config.size_bytes == 2048
        assert mc.l0d.config.size_bytes == 4096
        # Filler data path: L0 -> lender L1D -> LLC.
        levels = mc.filler_ports.dhier.levels
        assert levels[0].cache is mc.l0d
        assert levels[1].cache is lender.stack.l1d
        assert levels[2].cache is mc.llc
        # The +3-cycle hop past the L0 (Section III-B3).
        assert mc.filler_ports.dhier.extra_cycles_after == {0: 3}

    def test_duplexity_needs_lender(self):
        with pytest.raises(ValueError):
            build("duplexity", with_lender=False)

    def test_duplexity_segregated_predictor(self):
        mc, _ = build("duplexity")
        assert mc.filler_ports.predictor is not mc.master_stack.predictor

    def test_master_and_filler_share_llc(self):
        mc, lender = build("duplexity")
        assert mc.master_stack.llc is mc.llc
        assert lender.stack.llc is mc.llc


class TestInclusion:
    def test_lender_l1d_eviction_invalidates_l0(self):
        mc, lender = build("duplexity")
        l1d = lender.stack.l1d
        mc.l0d.fill(0x9000)
        l1d.fill(0x9000)
        # Force eviction of the line from the lender's L1D via its own port.
        stride = l1d.config.num_sets * 64
        lender.stack.dhier.access(0x9000 + stride)
        lender.stack.dhier.access(0x9000 + 2 * stride)
        lender.stack.dhier.access(0x9000 + 3 * stride)  # 2-way: 0x9000 out
        assert not mc.l0d.probe(0x9000)


class TestThreads:
    def test_attach_master_once(self):
        mc, _ = build("duplexity")
        trace = mcrouter().saturated_trace(
            np.random.default_rng(0), num_requests=2, time_scale=0.2
        )
        mc.attach_master_trace(trace)
        with pytest.raises(RuntimeError):
            mc.attach_master_trace(trace)

    def test_filler_contexts_hsmt_unbounded(self):
        mc, _ = build("duplexity")
        for i in range(12):
            mc.add_filler_trace(filler_trace(np.random.default_rng(i), 1000, slot=i + 1))
        assert len(mc.filler_threads) == 12
        assert mc.filler_scheduler.active_count == 8

    def test_morphcore_capped_at_eight(self):
        mc, _ = build("morphcore")
        for i in range(8):
            mc.add_filler_trace(filler_trace(np.random.default_rng(i), 1000, slot=i + 1))
        with pytest.raises(RuntimeError):
            mc.add_filler_trace(filler_trace(np.random.default_rng(9), 1000, slot=9))

    def test_baseline_rejects_fillers(self):
        mc, _ = build("baseline")
        with pytest.raises(RuntimeError):
            mc.add_filler_trace(filler_trace(np.random.default_rng(0), 1000, slot=1))
