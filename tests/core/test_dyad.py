"""Dyad co-simulation invariants."""

import numpy as np
import pytest

from repro.core import Dyad
from repro.core.dyad import DyadResult
from repro.workloads.microservices import flann_ll, mcrouter, wordstem


def run(design, workload=None, **kw):
    dyad = Dyad(
        workload or mcrouter(),
        design,
        seed=5,
        filler_trace_instructions=6000,
        time_scale=0.2,
    )
    defaults = dict(num_requests=6, warmup_requests=2, run_lender=False)
    defaults.update(kw)
    return dyad, dyad.simulate(**defaults)


class TestInvariants:
    def test_utilization_bounded(self):
        for design in ("baseline", "morphcore", "duplexity"):
            _, sim = run(design)
            assert 0.0 < sim.dyad.utilization <= 1.0, design

    def test_baseline_has_no_filler_instructions(self):
        _, sim = run("baseline")
        assert sim.dyad.filler_instructions == 0
        assert sim.dyad.morphed_windows == 0

    def test_morphing_design_fills_windows(self):
        _, sim = run("duplexity")
        r = sim.dyad
        assert r.morphed_windows > 0
        assert r.filler_instructions > 0
        assert r.morphed_windows <= r.stall_windows

    def test_stall_windows_match_requests(self):
        # McRouter has one stall phase per request.
        _, sim = run("baseline", num_requests=5, warmup_requests=0)
        assert sim.dyad.stall_windows == 5

    def test_wordstem_never_stalls(self):
        _, sim = run("duplexity", workload=wordstem())
        r = sim.dyad
        assert r.stall_windows == 0
        assert r.filler_instructions == 0  # no in-request holes to fill

    def test_overheads_accounted(self):
        _, sim = run("duplexity")
        r = sim.dyad
        assert r.morph_overhead_cycles == r.morphed_windows * 100
        assert r.restart_overhead_cycles == r.morphed_windows * 50

    def test_morphcore_pays_bigger_restart(self):
        _, sim_m = run("morphcore")
        _, sim_d = run("duplexity")
        per_window_m = sim_m.dyad.restart_overhead_cycles / max(
            1, sim_m.dyad.morphed_windows
        )
        per_window_d = sim_d.dyad.restart_overhead_cycles / max(
            1, sim_d.dyad.morphed_windows
        )
        assert per_window_m > per_window_d

    def test_stall_fraction_plausible(self):
        # McRouter: 3 us compute + 3-5 us stall => ~40-65% stalled.
        _, sim = run("baseline")
        assert 0.25 < sim.dyad.stall_fraction < 0.75

    def test_utilization_exceeds_master_only_when_morphing(self):
        _, sim = run("duplexity")
        assert sim.dyad.utilization > sim.dyad.master_only_utilization


class TestComparative:
    def test_duplexity_beats_baseline_utilization(self):
        _, base = run("baseline")
        _, dup = run("duplexity")
        assert dup.dyad.utilization > 2 * base.dyad.utilization

    def test_duplexity_master_faster_than_morphcore(self):
        # State segregation: Duplexity's master keeps (at least) the
        # compute IPC that MorphCore's polluted master gets.
        _, morph = run("morphcore", num_requests=10, warmup_requests=3)
        _, dup = run("duplexity", num_requests=10, warmup_requests=3)
        assert dup.dyad.master_compute_ipc >= morph.dyad.master_compute_ipc * 0.97


class TestLenderSide:
    def test_lender_runs_with_dyad(self):
        dyad, sim = run("duplexity", run_lender=True, lender_instructions=10_000)
        assert sim.lender is not None
        # The measured interval covers the full budget (after a half-budget
        # warmup excluded from the stats).
        assert sim.lender.engine.instructions == 10_000

    def test_idle_fill_rate_positive(self):
        dyad, _ = run("duplexity")
        assert dyad.idle_fill_ipc(cycles=15_000) > 0.5

    def test_baseline_idle_fill_zero(self):
        dyad, _ = run("baseline")
        assert dyad.simulator.run_filler_only(1000) == 0.0


class TestErrors:
    def test_requires_master_trace(self):
        from repro.core.dyad import DyadSimulator
        from repro.core.master import MasterCoreComplex
        from repro.core.designs import get_design

        mc = MasterCoreComplex(get_design("baseline"))
        with pytest.raises(RuntimeError):
            DyadSimulator(mc).run()

    def test_smt_rejected_by_dyad(self):
        with pytest.raises(ValueError):
            Dyad(mcrouter(), "smt")
