"""Dyad facade (pool split, LLC sharing, simulation plumbing)."""

import pytest

from repro.core import Dyad, dyad_llc_config
from repro.workloads.microservices import mcrouter


def test_llc_slice_is_two_megabytes():
    cfg = dyad_llc_config()
    assert cfg.size_bytes == 2 * 1024 * 1024
    assert cfg.associativity == 8


def test_pool_split_for_hsmt_designs():
    dyad = Dyad(mcrouter(), "duplexity", filler_trace_instructions=500)
    assert len(dyad.master.filler_threads) == 16
    assert len(dyad.lender.contexts) == 16


def test_pool_for_morphcore_limited_to_hardware_threads():
    dyad = Dyad(mcrouter(), "morphcore", filler_trace_instructions=500)
    assert len(dyad.master.filler_threads) == 8
    assert len(dyad.lender.contexts) == 24


def test_baseline_lender_pool_matches_dyad_split():
    dyad = Dyad(mcrouter(), "baseline", filler_trace_instructions=500)
    assert len(dyad.master.filler_threads) == 0
    assert len(dyad.lender.contexts) == 16


def test_shared_llc_object():
    dyad = Dyad(mcrouter(), "duplexity", filler_trace_instructions=500)
    assert dyad.master.llc is dyad.llc
    assert dyad.lender.stack.llc is dyad.llc


def test_lender_clock_follows_design():
    dyad = Dyad(mcrouter(), "duplexity", filler_trace_instructions=500)
    assert dyad.lender.config.frequency_hz == pytest.approx(3.25e9)


def test_nic_default():
    dyad = Dyad(mcrouter(), "baseline", filler_trace_instructions=500)
    assert dyad.nic.max_iops == 90e6


def test_design_accepts_object_or_name():
    from repro.core.designs import get_design

    by_name = Dyad(mcrouter(), "baseline", filler_trace_instructions=500)
    by_obj = Dyad(mcrouter(), get_design("baseline"), filler_trace_instructions=500)
    assert by_name.design == by_obj.design
