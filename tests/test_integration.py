"""End-to-end integration through the public package API."""

import numpy as np
import pytest

import repro
from repro import Dyad, all_designs, get_design, mcrouter, wordstem


def test_version():
    assert repro.__version__


def test_public_api_surface():
    for name in (
        "Dyad",
        "run_cell",
        "run_grid",
        "evaluation_grid",
        "standard_microservices",
        "flann_ha",
        "rsc",
    ):
        assert hasattr(repro, name), name


def test_design_registry_through_package():
    assert len(all_designs()) == 7
    assert get_design("duplexity").name == "duplexity"


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def sims(self):
        out = {}
        for design in ("baseline", "duplexity"):
            dyad = Dyad(
                mcrouter(),
                design,
                seed=2,
                filler_trace_instructions=6000,
                time_scale=0.2,
            )
            out[design] = dyad.simulate(
                num_requests=8, warmup_requests=2, lender_instructions=30_000
            )
        return out

    def test_duplexity_recovers_utilization(self, sims):
        base = sims["baseline"].dyad
        dup = sims["duplexity"].dyad
        assert dup.utilization > 2.5 * base.utilization

    def test_master_thread_protected(self, sims):
        base = sims["baseline"].dyad
        dup = sims["duplexity"].dyad
        # Segregated state: the master keeps ~its stand-alone compute IPC.
        assert dup.master_compute_ipc > 0.85 * base.master_compute_ipc

    def test_lender_throughput_close_to_exclusive(self, sims):
        # Sharing the lender's L1 with filler threads costs only a little
        # (the paper's STP-within-8%-of-replication argument).
        base_lender = sims["baseline"].lender.ipc
        dup_lender = sims["duplexity"].lender.ipc
        assert dup_lender > 0.7 * base_lender

    def test_requests_all_served(self, sims):
        for sim in sims.values():
            assert sim.dyad.master_instructions > 0


def test_wordstem_no_stall_windows():
    dyad = Dyad(wordstem(), "duplexity", seed=3, filler_trace_instructions=4000,
                time_scale=0.2)
    sim = dyad.simulate(num_requests=5, warmup_requests=1, run_lender=False)
    assert sim.dyad.stall_windows == 0


def test_deterministic_end_to_end():
    def once():
        dyad = Dyad(mcrouter(), "duplexity", seed=9,
                    filler_trace_instructions=4000, time_scale=0.2)
        sim = dyad.simulate(num_requests=4, warmup_requests=1, run_lender=False)
        return (
            sim.dyad.total_cycles,
            sim.dyad.master_instructions,
            sim.dyad.filler_instructions,
        )

    assert once() == once()
