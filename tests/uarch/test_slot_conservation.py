"""Slot-attribution conservation across every core datapath.

The profiler's headline guarantee: for every profiled core,
``sum(attributed slots) == width x cycles`` as an exact integer
identity — retiring slots equal retired instructions, stall slots are
distributed over the recorded causes by largest remainder, and any
unclaimed residual lands in an explicit IDLE bucket.  Pinned here for
each core model (OoO, OoO-SMT under both fetch policies, in-order SMT,
and the HSMT lender core) so an engine change that leaks or
double-charges slots fails loudly.
"""

import numpy as np
import pytest

from repro import prof
from repro.prof.taxonomy import CATEGORY, SlotCause
from repro.uarch.cores import (
    BaselineCoreModel,
    InOrderSMTCoreModel,
    LenderCoreModel,
    SMTCoreModel,
    SMTCoreConfig,
)
from tests.uarch.test_cores import trace


@pytest.fixture(autouse=True)
def _clean_prof():
    prof.reset()
    prof.enable()
    yield
    prof.reset()


def _check(engine, *, retired: int | None = None):
    """Assert exact conservation for ``engine``'s core profile."""
    snap = prof.snapshot()
    (core,) = [c for c in snap.cores if c.core == engine.name]
    assert core.conserved()
    assert core.slots_total == engine.width * engine.now
    assert sum(core.slots.values()) == core.slots_total
    for cause in core.slots:
        assert SlotCause(cause) in CATEGORY
    for ts in core.threads:
        assert all(v >= 0 for v in ts.slots.values())
    # Per-thread buckets must themselves sum back to the core total.
    assert (
        sum(v for ts in core.threads for v in ts.slots.values())
        == core.slots_total
    )
    if retired is not None:
        assert core.slots.get(int(SlotCause.RETIRING), 0) == retired
    return core


def test_baseline_ooo_conserves():
    model = BaselineCoreModel()
    result = model.run(trace(8000))
    core = _check(model.engine, retired=result.engine.instructions)
    assert core.mode == "ooo"
    assert core.width == model.engine.width


def test_baseline_with_warmup_conserves():
    # Warmup retires instructions through the same engine; the slot pool
    # must cover the warmup cycles too (account_run folds every run).
    model = BaselineCoreModel()
    model.run(trace(8000), warmup_instructions=2000)
    _check(model.engine, retired=8000)


def test_smt_icount_conserves():
    model = SMTCoreModel()
    traces = [trace(5000, slot=i, seed=i) for i in range(2)]
    result = model.run(traces, max_instructions=8000)
    core = _check(model.engine, retired=result.engine.instructions)
    assert core.mode == "smt-icount"
    # Both hardware threads should have retired something.
    named = {ts.thread for ts in core.threads}
    assert {"smt.t0", "smt.t1"} <= named


def test_smt_priority_conserves():
    model = SMTCoreModel(SMTCoreConfig(fetch_policy="priority"))
    traces = [trace(5000, slot=i, seed=i) for i in range(2)]
    model.run(traces, max_instructions=8000)
    core = _check(model.engine)
    assert core.mode == "smt-priority"


def test_inorder_smt_conserves():
    model = InOrderSMTCoreModel()
    traces = [trace(4000, slot=i, seed=i) for i in range(4)]
    result = model.run(traces, max_instructions=20_000)
    core = _check(model.engine, retired=result.engine.instructions)
    assert core.mode == "ino-smt"
    # An in-order datapath must charge serialization somewhere: the
    # stall mass cannot all be IDLE on a 4-thread looping run.
    stall = core.slots_total - core.slots.get(int(SlotCause.RETIRING), 0)
    idle = core.slots.get(int(SlotCause.IDLE), 0)
    assert stall == 0 or idle < stall


def test_lender_hsmt_conserves():
    model = LenderCoreModel()
    for i in range(12):
        model.add_virtual_context(trace(3000, slot=i, seed=i))
    result = model.run(max_instructions=30_000)
    core = _check(model.engine, retired=result.engine.instructions)
    assert core.mode == "hsmt"


def test_multiple_runs_accumulate_conserved():
    # Two runs through the same engine: totals accumulate and stay exact.
    model = BaselineCoreModel()
    model.run(trace(3000), max_instructions=1500)
    model.engine.run(max_instructions=1500)
    _check(model.engine, retired=3000)


def test_conservation_survives_merge_roundtrip():
    model = BaselineCoreModel()
    model.run(trace(6000))
    serial = prof.snapshot()

    mark_all = prof.mark()
    delta_none = prof.delta_since(mark_all)
    assert delta_none.empty

    # Ship everything as a delta into a clean process-alike and re-check.
    empty_mark = prof.ProfMark(
        slots_total={},
        retired={},
        charges={},
        dyad_cycles={},
        dyad_instr={},
        num_intervals=0,
        num_waterfalls=0,
        num_transitions=0,
        num_tails=0,
        dropped={},
    )
    delta = prof.delta_since(empty_mark)
    prof.configure_worker({"enabled": True})
    prof.merge_delta(delta)
    assert prof.snapshot() == serial


def test_retiring_exactly_matches_instruction_count():
    rng = np.random.default_rng(7)
    for n in (1000, 2500, 4000):
        prof.reset()
        prof.enable()
        model = BaselineCoreModel()
        model.run(trace(int(n), seed=int(rng.integers(100))))
        core = _check(model.engine)
        assert core.slots.get(int(SlotCause.RETIRING), 0) == n
