"""Draw-for-draw identity of the C PCG64 port against NumPy.

The cluster event kernel consumes the dispatch stream live through a C
port of NumPy's PCG64 bit generator.  These tests pin every draw kind
the balancers use — ``random()`` doubles, the bounded integers behind
``Generator.choice`` (including the buffered 32-bit Lemire path and its
half-word carry), raw 64-bit words — plus the state round-trip through
kernel entry/exit and mid-run eject/resume continuity.
"""

import numpy as np
import pytest

from repro.uarch import fastpath
from repro.uarch.fastpath.build import load_kernel

pytestmark = pytest.mark.skipif(
    not fastpath.is_available(), reason="no C compiler / kernel unavailable"
)

_MASK64 = (1 << 64) - 1


def pack_state(rng: np.random.Generator) -> np.ndarray:
    st = rng.bit_generator.state
    s = st["state"]["state"]
    inc = st["state"]["inc"]
    return np.array(
        [s >> 64, s & _MASK64, inc >> 64, inc & _MASK64,
         st["has_uint32"], st["uinteger"]],
        dtype=np.uint64,
    )


def assert_state_matches(rng: np.random.Generator, words: np.ndarray):
    """The 6-word C state block equals the generator's state dict."""
    st = rng.bit_generator.state
    s = st["state"]["state"]
    inc = st["state"]["inc"]
    assert int(words[0]) == s >> 64
    assert int(words[1]) == (s & _MASK64)
    assert int(words[2]) == inc >> 64
    assert int(words[3]) == (inc & _MASK64)
    assert int(words[4]) == st["has_uint32"]
    if st["has_uint32"]:
        assert int(words[5]) == st["uinteger"]


class TestDrawIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 7, 12345])
    def test_doubles_match_generator_random(self, seed):
        lib = load_kernel()
        rng = np.random.default_rng(seed)
        words = pack_state(rng)
        out = np.empty(257)
        lib.rfp_pcg64_doubles(words.ctypes.data, 257, out.ctypes.data)
        assert np.array_equal(out, rng.random(257))
        assert_state_matches(rng, words)

    @pytest.mark.parametrize("seed", [0, 3, 99])
    def test_raw_matches_bit_generator(self, seed):
        lib = load_kernel()
        rng = np.random.default_rng(seed)
        words = pack_state(rng)
        out = np.empty(64, dtype=np.uint64)
        lib.rfp_pcg64_raw(words.ctypes.data, 64, out.ctypes.data)
        ref = np.random.default_rng(seed).bit_generator.random_raw(64)
        assert np.array_equal(out, ref.astype(np.uint64))

    @pytest.mark.parametrize("seed", [0, 5, 41])
    def test_bounded_matches_generator_integers(self, seed):
        """All four range classes of random_bounded_uint64: the no-draw
        degenerate range, buffered 32-bit Lemire (non-power-of-two
        ranges included), the raw half-word and full-word fast paths,
        and 64-bit Lemire."""
        lib = load_kernel()
        rng = np.random.default_rng(seed)
        words = pack_state(rng)
        ranges = np.array(
            [12, 0, 4, 6, 2**32 - 1, 2**40 + 12345, 2**64 - 1, 99, 1, 12],
            dtype=np.uint64,
        )
        out = np.empty(ranges.size, dtype=np.uint64)
        lib.rfp_pcg64_bounded(
            words.ctypes.data, ranges.size, ranges.ctypes.data, out.ctypes.data
        )
        ref = [
            int(rng.integers(0, int(r) + 1, dtype=np.uint64)) if r else 0
            for r in ranges
        ]
        assert list(out) == ref
        assert_state_matches(rng, words)

    def test_choice2_matches_generator_choice(self):
        """Floyd's two-pick sampling (hash collisions and the closing
        shuffle included) across population sizes and seeds."""
        lib = load_kernel()
        for seed in range(30):
            for pop in (3, 4, 5, 7, 11, 16, 40):
                rng = np.random.default_rng(seed * 97 + pop)
                words = pack_state(rng)
                out = np.empty(2, dtype=np.int64)
                lib.rfp_pcg64_choice2(words.ctypes.data, pop, out.ctypes.data)
                assert list(out) == list(rng.choice(pop, size=2, replace=False))
                assert_state_matches(rng, words)


class TestStateHandoff:
    def test_round_trip_without_draws(self):
        lib = load_kernel()
        rng = np.random.default_rng(17)
        words = pack_state(rng)
        lib.rfp_pcg64_doubles(words.ctypes.data, 0, np.empty(0).ctypes.data)
        assert np.array_equal(words, pack_state(rng))

    def test_buffered_half_word_crosses_the_boundary(self):
        """A generator left with has_uint32 set hands its buffered
        half-word to C, which must consume it before stepping."""
        lib = load_kernel()
        rng = np.random.default_rng(23)
        rng.integers(0, 7)  # leaves a buffered high half-word behind
        assert rng.bit_generator.state["has_uint32"] == 1
        words = pack_state(rng)
        out = np.empty(3, dtype=np.uint64)
        ranges = np.full(3, 9, dtype=np.uint64)
        lib.rfp_pcg64_bounded(
            words.ctypes.data, 3, ranges.ctypes.data, out.ctypes.data
        )
        assert list(out) == [int(rng.integers(0, 10)) for _ in range(3)]
        assert_state_matches(rng, words)

    def test_eject_resume_continuity(self):
        """Draws split across two kernel entries equal one uninterrupted
        NumPy pass — the mid-run eject/resume contract."""
        lib = load_kernel()
        rng = np.random.default_rng(31)
        words = pack_state(rng)
        first = np.empty(11)
        second = np.empty(13)
        lib.rfp_pcg64_doubles(words.ctypes.data, 11, first.ctypes.data)
        lib.rfp_pcg64_doubles(words.ctypes.data, 13, second.ctypes.data)
        ref = rng.random(24)
        assert np.array_equal(np.concatenate([first, second]), ref)
        assert_state_matches(rng, words)

    def test_write_back_resumes_python_stream(self):
        """After C draws are written back into the Generator, subsequent
        Python draws continue the stream exactly."""
        lib = load_kernel()
        rng = np.random.default_rng(43)
        ref = np.random.default_rng(43)
        words = pack_state(rng)
        out = np.empty(9)
        lib.rfp_pcg64_doubles(words.ctypes.data, 9, out.ctypes.data)
        st = rng.bit_generator.state
        st["state"]["state"] = (int(words[0]) << 64) | int(words[1])
        st["has_uint32"] = int(words[4])
        st["uinteger"] = int(words[5])
        rng.bit_generator.state = st
        assert np.array_equal(out, ref.random(9))
        assert np.array_equal(rng.random(17), ref.random(17))
