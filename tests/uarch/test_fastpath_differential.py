"""Differential fuzzing of the compiled fast path against the reference.

The fastpath's contract is *byte identity*: running any engine window in
the compiled kernel must leave every observable — results, per-thread
state, queue contents, cache/TLB/BTB/predictor state, scheduler state,
slot-cause attributions, interval timelines — exactly as the pure-Python
reference loop would.  These tests run both paths over a grid of core
models x trace characters x run shapes and compare full state dumps
field for field, so any semantic drift in the kernel fails loudly rather
than skewing results quietly.
"""

import dataclasses

import numpy as np
import pytest

from repro import prof
from repro.prof.taxonomy import SlotCause
from repro.uarch import fastpath
from repro.uarch.cores import (
    BaselineCoreModel,
    InOrderSMTCoreModel,
    LenderCoreModel,
    SMTCoreModel,
)
from repro.workloads.tracegen import RemoteSpec, TraceProfile, generate_trace

pytestmark = pytest.mark.skipif(
    not fastpath.is_available(), reason="no C compiler for the fastpath kernel"
)


@pytest.fixture(autouse=True)
def _restore_mode():
    yield
    fastpath.set_mode(None)


PROFILES = {
    "friendly": TraceProfile(
        name="friendly",
        working_set_bytes=16 << 10,
        hot_set_bytes=8 << 10,
        code_bytes=8 << 10,
    ),
    "hostile": TraceProfile(
        name="hostile",
        working_set_bytes=1 << 20,
        hot_set_bytes=16 << 10,
        code_bytes=64 << 10,
        pointer_chase_fraction=0.2,
        load_fraction=0.35,
        branch_predictability=0.6,
        dep_chain=0.5,
    ),
}

#: (num_instructions, warmup) shapes standing in for the fidelity axis.
RUN_SHAPES = {"short": (6_000, 0), "warmed": (20_000, 10_000)}


def _trace(profile_name, n, slot=0, seed=0, remote=None):
    profile = PROFILES[profile_name].relocated(slot)
    return generate_trace(profile, n, np.random.default_rng(seed), remote=remote)


def engine_state(engine):
    """Every observable scalar/array of an engine, Python-side."""
    state = {
        "now": engine.now,
        "instructions": engine.instructions,
        "_seq": engine._seq,
        "_prune_countdown": engine._prune_countdown,
        "heap": sorted(engine._heap),
    }
    for label, alloc in (
        ("fetch", engine.fetch_slots),
        ("issue", engine.issue_slots),
        ("commit", engine.commit_slots),
    ):
        state[label] = (dict(alloc._used), alloc._floor, alloc.allocated)
    sched = engine.scheduler
    if sched is not None:
        state["sched"] = (
            [t.name for t in sched.ready],
            [(c, s, t.name) for (c, s, t) in sched._blocked],
            sched._seq,
            sched.active_count,
            sched.swaps,
            sched.preemptions,
        )
    for i, t in enumerate(engine.threads):
        state[f"t{i}"] = {
            "cursor": t.cursor,
            "done": t.done,
            "active": t.active,
            "next_fetch": t.next_fetch,
            "last_issue": t.last_issue,
            "last_commit": t.last_commit,
            "last_line": t.last_line,
            "last_page": t.last_page,
            "instructions": t.instructions,
            "mispredicts": t.mispredicts,
            "branches": t.branches,
            "remote_ops": t.remote_ops,
            "remote_stall_cycles": t.remote_stall_cycles,
            "activated_at": t.activated_at,
            "first_fetch": t.first_fetch,
            "bp_history": t.bp_history,
            "last_remote_issue": t.last_remote_issue,
            "last_remote_complete": t.last_remote_complete,
            "reg_ready": list(t.reg_ready),
            "rob": list(t.rob),
            "lq": list(t.lq),
            "sq": list(t.sq),
        }
        ports = t.ports
        for plabel, hier in (("ih", ports.ihier), ("dh", ports.dhier)):
            state[f"t{i}.{plabel}"] = {
                "accesses": hier.accesses,
                "total_latency": hier.total_latency,
                "memory_lookups": hier.memory_lookups,
                "prefetches": hier.prefetches,
                "last_line": hier._last_line,
                "level_lookups": list(hier.level_lookups),
                "levels": [
                    (
                        lvl.cache.hits,
                        lvl.cache.misses,
                        lvl.cache.evictions,
                        lvl.cache.invalidations,
                        lvl.cache._sets,
                    )
                    for lvl in hier.levels
                ],
            }
        for plabel, tlb in (("itlb", ports.itlb), ("dtlb", ports.dtlb)):
            if tlb is not None:
                state[f"t{i}.{plabel}"] = (tlb.hits, tlb.misses, list(tlb._entries))
        if ports.btb is not None:
            state[f"t{i}.btb"] = (
                ports.btb.hits,
                ports.btb.misses,
                list(ports.btb._tags),
                list(ports.btb._targets),
            )
        pred = ports.predictor
        if pred is not None:
            tables = []
            if hasattr(pred, "_table"):  # Bimodal / Gshare
                tables.append(pred._table.tolist())
            if hasattr(pred, "bimodal"):  # Tournament
                tables.append(pred.bimodal._table.tolist())
                tables.append(pred.gshare._table.tolist())
                tables.append(pred._selector.tolist())
            state[f"t{i}.pred"] = (type(pred).__name__, tables)
    return state


def assert_states_equal(off, on):
    assert off.keys() == on.keys()
    for key in off:
        assert off[key] == on[key], f"state diverged at {key!r}"


def _result_fields(result):
    return (
        result.engine.instructions,
        result.engine.cycles,
        result.engine.width,
        result.engine.start_cycle,
        result.thread_instructions,
        result.thread_stall_cycles,
    )


def _run_both(run_fn):
    """Run ``run_fn`` under both modes; return (off, on) outcome pairs.

    The mode-on engine is ejected before state capture so the comparison
    reads fully exported Python state, and the test asserts the kernel
    actually engaged — a silent fallback would make the suite vacuous.
    """
    fastpath.set_mode("off")
    model_off, result_off = run_fn()
    fastpath.set_mode("on")
    model_on, result_on = run_fn()
    assert model_on.engine._fp_binding is not None, "kernel did not engage"
    fastpath.eject_engine(model_on.engine)
    assert model_on.engine._fp_binding is None
    return (model_off, result_off), (model_on, result_on)


RUNNERS = {}


def runner(name):
    def deco(fn):
        RUNNERS[name] = fn
        return fn

    return deco


@runner("baseline")
def _run_baseline(profile_name, shape):
    n, warmup = RUN_SHAPES[shape]
    model = BaselineCoreModel()
    result = model.run(_trace(profile_name, n), warmup_instructions=warmup)
    return model, result


@runner("smt")
def _run_smt(profile_name, shape):
    n, warmup = RUN_SHAPES[shape]
    model = SMTCoreModel()
    traces = [_trace(profile_name, n, slot=i, seed=i) for i in range(2)]
    result = model.run(traces, max_instructions=n + warmup)
    return model, result


@runner("ino-smt")
def _run_ino(profile_name, shape):
    n, warmup = RUN_SHAPES[shape]
    model = InOrderSMTCoreModel()
    traces = [_trace(profile_name, n // 2, slot=i, seed=i) for i in range(4)]
    result = model.run(traces, max_instructions=n + warmup)
    return model, result


@runner("lender-hsmt")
def _run_lender(profile_name, shape):
    n, warmup = RUN_SHAPES[shape]
    model = LenderCoreModel()
    spec = RemoteSpec(mean_interval_instructions=400.0, mean_stall_us=2.0)
    for i in range(8):
        model.add_virtual_context(
            _trace(profile_name, n // 2, slot=i, seed=i, remote=spec)
        )
    result = model.run(max_instructions=n + warmup)
    return model, result


@pytest.mark.parametrize("shape", sorted(RUN_SHAPES))
@pytest.mark.parametrize("profile_name", sorted(PROFILES))
@pytest.mark.parametrize("model_name", sorted(RUNNERS))
def test_full_state_identical(model_name, profile_name, shape):
    run = RUNNERS[model_name]
    (m_off, r_off), (m_on, r_on) = _run_both(lambda: run(profile_name, shape))
    assert _result_fields(r_off) == _result_fields(r_on)
    assert_states_equal(engine_state(m_off.engine), engine_state(m_on.engine))


@pytest.mark.parametrize("model_name", sorted(RUNNERS))
def test_profiled_run_identical(model_name):
    """Slot-cause vectors, interval timelines and waterfalls, field for
    field: the whole profile snapshot must be mode-independent."""
    run = RUNNERS[model_name]

    def profiled():
        prof.reset()
        prof.enable()
        try:
            outcome = run("friendly", "warmed")
            snap = prof.snapshot()
        finally:
            prof.disable()
        return outcome, dataclasses.asdict(snap)

    fastpath.set_mode("off")
    (_, _), snap_off = profiled()
    fastpath.set_mode("on")
    (model_on, _), snap_on = profiled()
    assert model_on.engine._fp_binding is not None, "kernel did not engage"
    fastpath.eject_engine(model_on.engine)
    assert snap_off == snap_on


@pytest.mark.parametrize("model_name", sorted(RUNNERS))
def test_slot_conservation_on_compiled_path(model_name):
    """sum(causes) == width x cycles must hold on the compiled path in
    its own right, not only by matching the reference."""
    fastpath.set_mode("on")
    prof.reset()
    prof.enable()
    try:
        model, _ = RUNNERS[model_name]("friendly", "warmed")
        assert model.engine._fp_binding is not None, "kernel did not engage"
        snap = prof.snapshot()
    finally:
        prof.disable()
        prof.reset()
    (core,) = [c for c in snap.cores if c.core == model.engine.name]
    assert core.conserved()
    assert core.slots_total == model.engine.width * model.engine.now
    assert sum(core.slots.values()) == core.slots_total
    assert (
        sum(v for ts in core.threads for v in ts.slots.values())
        == core.slots_total
    )
    assert all(SlotCause(c) is not None for c in core.slots)


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
@pytest.mark.parametrize(
    "remote",
    [None, RemoteSpec(mean_interval_instructions=200.0, mean_stall_us=5.0)],
    ids=["local", "remote"],
)
@pytest.mark.parametrize("seed", [0, 7])
def test_tracegen_columns_identical(profile_name, remote, seed):
    """The compiled trace-generation loop fills every column (values and
    dtypes) bit-identically to the reference loop."""
    columns = ("op", "dst", "src1", "src2", "addr", "pc", "taken", "target", "stall_ns")
    for n in (1, 8, 9, 4_000):
        fastpath.set_mode("off")
        ref = generate_trace(
            PROFILES[profile_name], n, np.random.default_rng(seed), remote=remote
        )
        fastpath.set_mode("on")
        fast = generate_trace(
            PROFILES[profile_name], n, np.random.default_rng(seed), remote=remote
        )
        for col in columns:
            a, b = getattr(ref, col), getattr(fast, col)
            assert a.dtype == b.dtype, (col, n)
            assert np.array_equal(a, b), (col, n)


def test_incremental_runs_and_fast_forward_identical():
    """Resumable-run shapes: several max_instructions windows with a
    fast_forward between them must stay in lockstep."""

    def staged():
        model = BaselineCoreModel()
        model.run(_trace("friendly", 12_000), max_instructions=3_000)
        engine = model.engine
        engine.fast_forward(engine.now + 12_345)
        engine.run(max_instructions=4_000)
        engine.run()
        return model

    fastpath.set_mode("off")
    m_off = staged()
    fastpath.set_mode("on")
    m_on = staged()
    fastpath.eject_engine(m_on.engine)
    assert_states_equal(engine_state(m_off.engine), engine_state(m_on.engine))


def test_auto_mode_skips_tiny_runs_and_compiles_big_ones():
    fastpath.set_mode("auto")
    small = BaselineCoreModel()
    small.run(_trace("friendly", 500))
    assert small.engine._fp_binding is None

    big = BaselineCoreModel()
    big.run(_trace("friendly", 30_000))
    assert big.engine._fp_binding is not None
    fastpath.eject_engine(big.engine)


def test_off_mode_never_binds():
    fastpath.set_mode("off")
    model = BaselineCoreModel()
    model.run(_trace("friendly", 30_000))
    assert model.engine._fp_binding is None
