"""Configured core models."""

import numpy as np
import pytest

from repro.common.params import LenderCoreConfig, OoOCoreConfig, SMTCoreConfig
from repro.uarch.cores import (
    BaselineCoreModel,
    InOrderSMTCoreModel,
    LenderCoreModel,
    SMTCoreModel,
    memory_cycles,
)
from repro.workloads.filler import filler_trace
from repro.workloads.tracegen import TraceProfile, generate_trace


def friendly_profile(slot=0):
    return TraceProfile(
        name="friendly",
        working_set_bytes=16 << 10,
        hot_set_bytes=8 << 10,
        code_bytes=8 << 10,
    ).relocated(slot)


def trace(n=20_000, slot=0, seed=0):
    return generate_trace(friendly_profile(slot), n, np.random.default_rng(seed))


def test_memory_cycles_table_i():
    assert memory_cycles(3.4e9) == 170
    assert memory_cycles(3.25e9) == 162  # round(162.5) banker's rounding


class TestBaseline:
    def test_runs_to_completion(self):
        model = BaselineCoreModel()
        result = model.run(trace(5000))
        assert result.threads[0].done
        assert result.engine.instructions == 5000

    def test_warmup_excluded(self):
        model = BaselineCoreModel()
        result = model.run(trace(20_000), warmup_instructions=10_000)
        assert result.engine.instructions == 10_000
        assert result.thread_instructions == [10_000]

    def test_warm_ipc_reasonable(self):
        model = BaselineCoreModel()
        result = model.run(trace(60_000), warmup_instructions=30_000)
        assert 1.0 < result.ipc <= 4.0

    def test_utilization_definition(self):
        model = BaselineCoreModel()
        result = model.run(trace(20_000), warmup_instructions=10_000)
        assert result.utilization == pytest.approx(result.ipc / 4)


class TestSMT:
    def test_corunner_loops_until_critical_done(self):
        model = SMTCoreModel()
        result = model.run([trace(8000), trace(3000, slot=1, seed=1)])
        assert result.threads[0].done
        assert not result.threads[1].done
        assert result.thread_instructions[1] > 3000  # looped

    def test_storage_partition_icount(self):
        model = SMTCoreModel(SMTCoreConfig(fetch_policy="icount"))
        rob, lq, sq = model._storage_caps(2, is_critical=True)
        assert rob == 72 and lq == 24 and sq == 16

    def test_storage_priority_full_for_critical(self):
        model = SMTCoreModel(SMTCoreConfig(fetch_policy="priority", corunner_storage_cap=0.3))
        assert model._storage_caps(2, is_critical=True) == (144, 48, 32)
        rob, lq, sq = model._storage_caps(2, is_critical=False)
        assert rob == int(144 * 0.3)
        assert lq == int(48 * 0.3)

    def test_dynamic_sharing_floor(self):
        model = SMTCoreModel(SMTCoreConfig(fetch_policy="icount"))
        rob, lq, sq = model._storage_caps(16, is_critical=False)
        assert rob == 32  # floor, not 144//16 = 9

    def test_corunner_reserves_slots(self):
        model = SMTCoreModel(SMTCoreConfig(fetch_policy="priority"))
        result = model.run(
            [trace(3000), trace(3000, slot=1, seed=1)], max_instructions=2000
        )
        assert result.threads[0].slot_reserve == 0
        assert result.threads[1].slot_reserve == 2

    def test_loop_all_needs_budget(self):
        model = SMTCoreModel()
        with pytest.raises(ValueError):
            model.run([trace(1000)], loop_all=True)

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            SMTCoreModel().run([])

    def test_co_run_slows_critical_thread(self):
        alone = SMTCoreModel(name="alone").run(
            [trace(40_000)], warmup_instructions=15_000
        )
        co = SMTCoreModel(name="co").run(
            [trace(40_000), filler_trace(np.random.default_rng(5), 8000, slot=9)],
            warmup_instructions=15_000,
        )
        assert co.thread_ipc(0) < alone.thread_ipc(0)


class TestInOrderSMT:
    def test_thread_scaling_saturates(self):
        ipcs = {}
        for n in (1, 8):
            model = InOrderSMTCoreModel()
            traces = [trace(10_000, slot=i, seed=i) for i in range(n)]
            result = model.run(
                traces, max_instructions=30_000 * n, warmup_instructions=15_000 * n
            )
            ipcs[n] = result.ipc
        assert ipcs[8] > 2 * ipcs[1]
        assert ipcs[8] <= 4.0

    def test_all_threads_loop(self):
        model = InOrderSMTCoreModel()
        result = model.run([trace(2000)], max_instructions=5000)
        assert result.threads[0].instructions == 5000


class TestLenderCore:
    def test_requires_contexts(self):
        with pytest.raises(ValueError):
            LenderCoreModel().run()

    def test_hsmt_runs_all_contexts(self):
        model = LenderCoreModel()
        for i in range(12):
            model.add_virtual_context(
                filler_trace(np.random.default_rng(i), 4000, slot=i + 1, time_scale=0.25)
            )
        result = model.run(max_instructions=40_000, warmup_instructions=10_000)
        assert result.engine.instructions == 40_000
        ran = sum(1 for t in model.contexts if t.instructions > 0)
        assert ran >= 10

    def test_throughput_positive_under_stalls(self):
        model = LenderCoreModel()
        for i in range(16):
            model.add_virtual_context(
                filler_trace(np.random.default_rng(i), 4000, slot=i + 1, time_scale=0.25)
            )
        result = model.run(max_instructions=60_000, warmup_instructions=30_000)
        assert result.ipc > 1.0

    def test_quantum_configured_from_paper(self):
        model = LenderCoreModel(LenderCoreConfig())
        assert model.scheduler.quantum_cycles == 340_000  # 100 us at 3.4 GHz
