"""Event-driven timing engine semantics."""

import numpy as np
import pytest

from repro.common.params import LenderCoreConfig, OoOCoreConfig
from repro.uarch.cores import build_cache_stack
from repro.uarch.engine import ThreadState, TimingEngine
from repro.uarch.isa import NO_REG, Op, TraceBuilder
from repro.workloads.tracegen import TraceProfile, generate_trace


def make_ports(name="t"):
    return build_cache_stack(OoOCoreConfig(), name=name).ports()


def alu_trace(n, dep_on_prev=False):
    b = TraceBuilder()
    for i in range(n):
        src = (i - 1) % 8 if (dep_on_prev and i > 0) else NO_REG
        b.add(Op.IALU, dst=i % 8, src1=src, pc=0x400 + (i % 64) * 4)
    return b.build()


def engine(width=4):
    return TimingEngine(width=width, frequency_hz=3.4e9)


class TestThroughputBounds:
    def test_independent_alu_reaches_width(self):
        eng = engine()
        t = ThreadState(alu_trace(8000), make_ports(), kind="ooo")
        eng.add_thread(t)
        eng.run(max_instructions=4000)  # warm
        start_i, start_c = eng.instructions, eng.now
        eng.run()
        ipc = (eng.instructions - start_i) / (eng.now - start_c)
        assert ipc > 3.5

    def test_serial_chain_limited_to_one(self):
        eng = engine()
        t = ThreadState(alu_trace(4000, dep_on_prev=True), make_ports(), kind="ooo")
        eng.add_thread(t)
        result = eng.run()
        assert result.ipc <= 1.05

    def test_ipc_never_exceeds_width(self):
        eng = engine(width=2)
        t = ThreadState(alu_trace(4000), make_ports(), kind="ooo")
        eng.add_thread(t)
        result = eng.run()
        assert result.ipc <= 2.0 + 1e-9

    def test_inorder_never_faster_than_ooo(self):
        profile = TraceProfile(
            name="x", working_set_bytes=32 << 10, hot_set_bytes=8 << 10
        )
        trace = generate_trace(profile, 20_000, np.random.default_rng(0))
        results = {}
        for kind in ("ooo", "inorder"):
            eng = engine()
            t = ThreadState(trace, make_ports(kind), kind=kind, rob_cap=64)
            eng.add_thread(t)
            eng.run(max_instructions=10_000)
            s_i, s_c = eng.instructions, eng.now
            eng.run()
            results[kind] = (eng.instructions - s_i) / (eng.now - s_c)
        assert results["ooo"] >= results["inorder"]


class TestDependencies:
    def test_load_use_latency_visible(self):
        # A chain of dependent loads is slower than independent loads.
        def loads(dependent):
            b = TraceBuilder()
            for i in range(2000):
                src = 1 if dependent and i else NO_REG
                b.add(Op.LOAD, dst=1, src1=src, addr=(i % 64) * 64, pc=0x400)
            return b.build()

        ipcs = {}
        for dep in (False, True):
            eng = engine()
            t = ThreadState(loads(dep), make_ports(), kind="ooo")
            eng.add_thread(t)
            ipcs[dep] = eng.run().ipc
        assert ipcs[True] < ipcs[False] / 1.5


class TestRemote:
    def remote_trace(self, stall_ns=1000.0, n_compute=100):
        b = TraceBuilder()
        for i in range(n_compute):
            b.add(Op.IALU, dst=i % 8, pc=0x400 + i * 4)
        b.add(Op.REMOTE, stall_ns=stall_ns, pc=0x800)
        for i in range(n_compute):
            b.add(Op.IALU, dst=i % 8, pc=0xC00 + i * 4)
        return b.build()

    def test_block_policy_stalls_thread(self):
        eng = engine()
        t = ThreadState(self.remote_trace(), make_ports(), remote_policy="block")
        eng.add_thread(t)
        result = eng.run()
        stall_cycles = eng.stall_cycles_for_ns(1000.0)
        assert result.cycles >= stall_cycles
        assert t.remote_ops == 1
        assert t.remote_stall_cycles == stall_cycles

    def test_stop_after_remote(self):
        eng = engine()
        t = ThreadState(self.remote_trace(), make_ports(), remote_policy="block")
        eng.add_thread(t)
        eng.run(stop_after_remote=True)
        assert t.remote_ops == 1
        assert not t.done
        assert t.last_remote_complete > t.last_remote_issue
        eng.run()
        assert t.done

    def test_scheduler_policy_requires_scheduler(self):
        eng = engine()
        t = ThreadState(self.remote_trace(), make_ports(), remote_policy="scheduler")
        eng.add_thread(t)
        with pytest.raises(RuntimeError):
            eng.run()

    def test_stall_cycles_conversion(self):
        eng = TimingEngine(width=4, frequency_hz=3.25e9)
        assert eng.stall_cycles_for_ns(1000.0) == 3250


class TestBranches:
    def branch_trace(self, n, predictable):
        rng = np.random.default_rng(0)
        b = TraceBuilder()
        for i in range(n):
            for j in range(7):
                b.add(Op.IALU, dst=j % 8, pc=0x400 + j * 4)
            taken = bool(rng.random() < 0.5) if not predictable else True
            b.add(Op.BRANCH, taken=taken, pc=0x420, target=0x400)
        return b.build()

    def test_mispredicts_cost_cycles(self):
        ipcs = {}
        for predictable in (True, False):
            eng = engine()
            t = ThreadState(self.branch_trace(400, predictable), make_ports(str(predictable)))
            eng.add_thread(t)
            eng.run(max_instructions=1600)
            s_i, s_c = eng.instructions, eng.now
            eng.run()
            ipcs[predictable] = (eng.instructions - s_i) / (eng.now - s_c)
        assert ipcs[True] > ipcs[False] * 1.3

    def test_mispredict_counter(self):
        eng = engine()
        t = ThreadState(self.branch_trace(300, False), make_ports())
        eng.add_thread(t)
        eng.run()
        assert t.branches == 300
        assert 0 < t.mispredicts < 300


class TestWindows:
    def test_until_cycle_caps_fetch(self):
        eng = engine()
        t = ThreadState(alu_trace(100_000), make_ports(), kind="ooo", loop=True)
        eng.add_thread(t)
        eng.run(until_cycle=500)
        assert eng.instructions <= 4 * 500

    def test_fast_forward_voids_interval(self):
        eng = engine()
        t = ThreadState(alu_trace(100_000), make_ports(), kind="ooo", loop=True)
        eng.add_thread(t)
        eng.run(until_cycle=200)
        eng.fast_forward(10_000)
        before = eng.instructions
        eng.run(until_cycle=10_500)
        assert eng.instructions - before <= 4 * 500

    def test_fast_forward_monotone(self):
        eng = engine()
        t = ThreadState(alu_trace(1000), make_ports(), kind="ooo")
        eng.add_thread(t)
        eng.fast_forward(100)
        assert eng.now == 100
        eng.fast_forward(50)  # no going back
        assert eng.now == 100

    def test_windowed_total_conserves_work(self):
        # Splitting a run into windows never executes MORE than the
        # window budget allows.
        eng = engine()
        t = ThreadState(alu_trace(50_000), make_ports(), kind="ooo", loop=True)
        eng.add_thread(t)
        total = 0
        clock = 0
        for _ in range(10):
            clock += 300
            eng.fast_forward(clock)
            before = eng.instructions
            eng.run(until_cycle=clock + 200)
            total += eng.instructions - before
            clock += 200
        assert total <= 10 * 200 * 4


class TestMultiThread:
    def test_two_threads_share_bandwidth(self):
        eng = engine(width=4)
        stack = build_cache_stack(OoOCoreConfig(), name="shared")
        for i in range(2):
            trace = alu_trace(20_000)
            eng.add_thread(
                ThreadState(trace, stack.ports(), kind="ooo", name=f"t{i}", loop=True)
            )
        result = eng.run(max_instructions=30_000)
        assert result.ipc <= 4.0 + 1e-9
        assert result.ipc > 3.0

    def test_slot_reserve_caps_corunner(self):
        eng = engine(width=4)
        stack = build_cache_stack(OoOCoreConfig(), name="s")
        corunner = ThreadState(alu_trace(50_000), stack.ports(), kind="ooo", loop=True)
        corunner.slot_reserve = 2
        eng.add_thread(corunner)
        result = eng.run(max_instructions=10_000)
        assert result.ipc <= 2.0 + 1e-9

    def test_thread_instruction_accounting(self):
        eng = engine()
        stack = build_cache_stack(OoOCoreConfig(), name="s")
        a = ThreadState(alu_trace(500), stack.ports(), name="a")
        b = ThreadState(alu_trace(700), stack.ports(), name="b")
        eng.add_thread(a)
        eng.add_thread(b)
        eng.run()
        assert a.instructions == 500
        assert b.instructions == 700
        assert eng.instructions == 1200


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            ThreadState(alu_trace(10), make_ports(), kind="vliw")

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            ThreadState(alu_trace(10), make_ports(), remote_policy="retry")

    def test_empty_trace(self):
        with pytest.raises(ValueError):
            ThreadState(alu_trace(10).slice(0, 0), make_ports())


class TestObservability:
    def test_heartbeat_fires_on_long_runs(self):
        eng = engine()
        beats = []
        eng.heartbeat = lambda e: beats.append(e.instructions)
        eng.add_thread(ThreadState(alu_trace(10_000), make_ports(), kind="ooo"))
        eng.run()
        # One callback per ~4096 retired instructions, from the existing
        # amortized bookkeeping block.
        assert len(beats) == 10_000 // 4096
        assert beats == sorted(beats)

    def test_short_runs_skip_heartbeat(self):
        eng = engine()
        beats = []
        eng.heartbeat = lambda e: beats.append(e.now)
        eng.add_thread(ThreadState(alu_trace(100), make_ports(), kind="ooo"))
        eng.run()
        assert beats == []

    def test_run_totals_reach_obs_counters(self):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            eng = engine()
            eng.add_thread(
                ThreadState(alu_trace(2000), make_ports(), kind="ooo")
            )
            result = eng.run()
            assert obs.value("engine.runs") == 1
            assert obs.value("engine.instructions") == result.instructions
            assert obs.value("engine.cycles") == result.cycles
        finally:
            obs.reset()

    def test_counters_untouched_when_disabled(self):
        from repro import obs

        obs.reset()
        eng = engine()
        eng.add_thread(ThreadState(alu_trace(2000), make_ports(), kind="ooo"))
        eng.run()
        assert obs.counters() == {}
