"""Per-cycle slot allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uarch.slots import SlotAllocator


class TestBasic:
    def test_width_slots_per_cycle(self):
        a = SlotAllocator(4)
        cycles = [a.alloc(10) for _ in range(4)]
        assert cycles == [10, 10, 10, 10]
        assert a.alloc(10) == 11

    def test_earliest_respected(self):
        a = SlotAllocator(2)
        assert a.alloc(5) == 5
        assert a.alloc(3) == 3

    def test_spill_chain(self):
        a = SlotAllocator(1)
        assert [a.alloc(0) for _ in range(3)] == [0, 1, 2]

    def test_peek_does_not_reserve(self):
        a = SlotAllocator(1)
        assert a.peek(0) == 0
        assert a.peek(0) == 0
        assert a.alloc(0) == 0
        assert a.peek(0) == 1

    def test_used_at(self):
        a = SlotAllocator(4)
        a.alloc(7)
        a.alloc(7)
        assert a.used_at(7) == 2
        assert a.used_at(8) == 0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            SlotAllocator(0)


class TestMaxUsed:
    def test_low_priority_leaves_reserve(self):
        a = SlotAllocator(4)
        # Low-priority claimant may only fill 2 of 4 slots per cycle.
        cycles = [a.alloc(0, max_used=2) for _ in range(4)]
        assert cycles == [0, 0, 1, 1]

    def test_high_priority_uses_reserved_slots(self):
        a = SlotAllocator(4)
        for _ in range(2):
            a.alloc(0, max_used=2)
        assert a.alloc(0) == 0  # cycle 0 still has room for priority
        assert a.alloc(0) == 0
        assert a.alloc(0) == 1

    def test_cap_clamped_to_width(self):
        a = SlotAllocator(2)
        assert a.alloc(0, max_used=100) == 0

    def test_zero_cap_rejected(self):
        a = SlotAllocator(2)
        with pytest.raises(ValueError):
            a.alloc(0, max_used=0)


class TestFree:
    def test_free_releases_slot(self):
        a = SlotAllocator(1)
        c = a.alloc(5)
        a.free(c)
        assert a.alloc(5) == 5

    def test_free_unreserved_rejected(self):
        a = SlotAllocator(1)
        with pytest.raises(ValueError):
            a.free(3)

    def test_allocated_counter(self):
        a = SlotAllocator(2)
        a.alloc(0)
        a.alloc(0)
        a.free(0)
        assert a.allocated == 1


class TestRetire:
    def test_floor_prevents_past_allocation(self):
        a = SlotAllocator(2)
        a.retire_before(100)
        assert a.alloc(0) == 100

    def test_floor_monotone(self):
        a = SlotAllocator(2)
        a.retire_before(100)
        a.retire_before(50)  # ignored
        assert a.alloc(0) == 100

    def test_reset(self):
        a = SlotAllocator(2)
        a.alloc(5)
        a.retire_before(10)
        a.reset()
        assert a.alloc(0) == 0
        assert a.allocated == 1


@settings(max_examples=40, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=8),
    requests=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300),
)
def test_capacity_never_exceeded(width, requests):
    a = SlotAllocator(width)
    granted: dict[int, int] = {}
    for earliest in requests:
        cycle = a.alloc(earliest)
        assert cycle >= earliest
        granted[cycle] = granted.get(cycle, 0) + 1
    assert all(count <= width for count in granted.values())


@settings(max_examples=30, deadline=None)
@given(
    requests=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=100)
)
def test_first_fit_minimality(requests):
    # The granted cycle is the first with a free slot at request time.
    a = SlotAllocator(2)
    usage: dict[int, int] = {}
    for earliest in requests:
        cycle = a.alloc(earliest)
        expected = earliest
        while usage.get(expected, 0) >= 2:
            expected += 1
        assert cycle == expected
        usage[cycle] = usage.get(cycle, 0) + 1
