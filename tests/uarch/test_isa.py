"""Trace container and builder."""

import numpy as np
import pytest

from repro.uarch.isa import EXEC_LATENCY, NO_REG, Op, Trace, TraceBuilder


class TestBuilder:
    def test_build_roundtrip(self):
        b = TraceBuilder("t")
        b.add(Op.IALU, dst=1, src1=2)
        b.add(Op.LOAD, dst=3, addr=0x1000, pc=0x400)
        b.add(Op.BRANCH, src1=3, pc=0x404, taken=True, target=0x500)
        trace = b.build()
        assert len(trace) == 3
        assert trace.op[1] == Op.LOAD
        assert trace.addr[1] == 0x1000
        assert trace.taken[2]
        assert trace.target[2] == 0x500

    def test_remote_requires_stall(self):
        b = TraceBuilder()
        with pytest.raises(ValueError):
            b.add(Op.REMOTE)
        b.add(Op.REMOTE, stall_ns=1000.0)
        assert b.build().num_remote == 1

    def test_len(self):
        b = TraceBuilder()
        b.add(Op.IALU)
        assert len(b) == 1


class TestTrace:
    def make(self, n=10):
        b = TraceBuilder()
        for i in range(n):
            b.add(Op.IALU, dst=i % 8, pc=i * 4)
        return b.build()

    def test_mismatched_lengths_rejected(self):
        t = self.make(4)
        with pytest.raises(ValueError):
            Trace(
                op=t.op,
                dst=t.dst[:2],
                src1=t.src1,
                src2=t.src2,
                addr=t.addr,
                pc=t.pc,
                taken=t.taken,
                target=t.target,
                stall_ns=t.stall_ns,
            )

    def test_slice_is_view(self):
        t = self.make(10)
        s = t.slice(2, 5)
        assert len(s) == 3
        assert s.pc[0] == 8
        assert np.shares_memory(s.op, t.op)

    def test_total_stall(self):
        b = TraceBuilder()
        b.add(Op.REMOTE, stall_ns=100.0)
        b.add(Op.REMOTE, stall_ns=200.0)
        assert b.build().total_stall_ns == pytest.approx(300.0)

    def test_exec_latency_table_complete(self):
        for op in Op:
            assert op in EXEC_LATENCY

    def test_no_reg_sentinel(self):
        assert NO_REG == -1
