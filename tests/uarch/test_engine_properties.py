"""Property-based invariants of the timing engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import OoOCoreConfig
from repro.uarch.cores import build_cache_stack
from repro.uarch.engine import ThreadState, TimingEngine
from repro.workloads.tracegen import TraceProfile, generate_trace

profile_strategy = st.builds(
    TraceProfile,
    name=st.just("prop"),
    load_fraction=st.floats(min_value=0.0, max_value=0.4),
    store_fraction=st.floats(min_value=0.0, max_value=0.2),
    imul_fraction=st.floats(min_value=0.0, max_value=0.1),
    fp_fraction=st.floats(min_value=0.0, max_value=0.2),
    working_set_bytes=st.sampled_from([8 << 10, 64 << 10, 512 << 10]),
    hot_set_bytes=st.just(4 << 10),
    sequential_fraction=st.floats(min_value=0.0, max_value=1.0),
    pointer_chase_fraction=st.floats(min_value=0.0, max_value=0.3),
    code_bytes=st.sampled_from([2 << 10, 16 << 10]),
    branch_predictability=st.floats(min_value=0.5, max_value=1.0),
    dep_chain=st.floats(min_value=0.0, max_value=0.8),
)


def run_engine(profile, kind, seed, n=3000):
    trace = generate_trace(profile, n, np.random.default_rng(seed))
    engine = TimingEngine(width=4, frequency_hz=3.4e9)
    stack = build_cache_stack(OoOCoreConfig(), name="prop")
    thread = ThreadState(trace, stack.ports(), kind=kind, rob_cap=64)
    engine.add_thread(thread)
    result = engine.run()
    return result, thread


@settings(max_examples=15, deadline=None)
@given(profile=profile_strategy, seed=st.integers(min_value=0, max_value=100))
def test_ipc_within_physical_bounds(profile, seed):
    result, thread = run_engine(profile, "ooo", seed)
    assert 0 < result.ipc <= 4.0 + 1e-9
    assert thread.done
    assert result.instructions == 3000


@settings(max_examples=10, deadline=None)
@given(profile=profile_strategy, seed=st.integers(min_value=0, max_value=100))
def test_inorder_never_beats_ooo(profile, seed):
    ooo, _ = run_engine(profile, "ooo", seed)
    ino, _ = run_engine(profile, "inorder", seed)
    assert ino.ipc <= ooo.ipc * 1.02 + 1e-9  # small tolerance for ties


@settings(max_examples=10, deadline=None)
@given(profile=profile_strategy, seed=st.integers(min_value=0, max_value=100))
def test_deterministic_replay(profile, seed):
    a, _ = run_engine(profile, "ooo", seed)
    b, _ = run_engine(profile, "ooo", seed)
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions


@settings(max_examples=10, deadline=None)
@given(
    profile=profile_strategy,
    seed=st.integers(min_value=0, max_value=100),
    width=st.sampled_from([1, 2, 4, 8]),
)
def test_wider_engines_not_slower(profile, seed, width):
    trace = generate_trace(profile, 2000, np.random.default_rng(seed))

    def cycles(w):
        engine = TimingEngine(width=w, frequency_hz=3.4e9)
        stack = build_cache_stack(OoOCoreConfig(), name=f"w{w}")
        engine.add_thread(ThreadState(trace, stack.ports(), kind="ooo", rob_cap=64))
        return engine.run().cycles

    assert cycles(width) >= cycles(8) * 0.98  # 8-wide is an upper bound


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50))
def test_stall_cycles_accounted(seed):
    from repro.workloads.tracegen import RemoteSpec

    profile = TraceProfile(
        name="stall", working_set_bytes=8 << 10, hot_set_bytes=4 << 10
    )
    spec = RemoteSpec(mean_interval_instructions=300, mean_stall_us=1.0)
    trace = generate_trace(profile, 2000, np.random.default_rng(seed), remote=spec)
    engine = TimingEngine(width=4, frequency_hz=3.4e9)
    stack = build_cache_stack(OoOCoreConfig(), name="stall")
    thread = ThreadState(trace, stack.ports(), kind="ooo", remote_policy="block")
    engine.add_thread(thread)
    result = engine.run()
    # Blocked stalls put a floor under the run length.
    assert result.cycles >= thread.remote_stall_cycles
    expected = sum(
        engine.stall_cycles_for_ns(float(ns))
        for ns in trace.stall_ns[trace.stall_ns > 0]
    )
    assert thread.remote_stall_cycles == expected
