"""HSMT virtual-context scheduling."""

import numpy as np
import pytest

from repro.common.params import LenderCoreConfig
from repro.uarch.cores import build_cache_stack
from repro.uarch.engine import ThreadState, TimingEngine
from repro.uarch.hsmt import HSMTScheduler
from repro.uarch.isa import NO_REG, Op, TraceBuilder
from repro.workloads.filler import filler_trace


def make_engine():
    eng = TimingEngine(width=4, frequency_hz=3.25e9)
    stack = build_cache_stack(LenderCoreConfig(), name="hsmt")
    return eng, stack


def context_trace(compute=200, stall_ns=2000.0, repeats=5):
    b = TraceBuilder()
    for _ in range(repeats):
        for i in range(compute):
            b.add(Op.IALU, dst=i % 8, pc=0x400 + (i % 32) * 4)
        b.add(Op.REMOTE, stall_ns=stall_ns, pc=0x500)
    return b.build()


class TestScheduling:
    def test_contexts_beyond_physical_queue(self):
        eng, stack = make_engine()
        sched = HSMTScheduler(eng, physical_contexts=2, swap_cycles=10)
        for i in range(5):
            sched.add_context(
                ThreadState(
                    context_trace(),
                    stack.ports(),
                    kind="inorder",
                    remote_policy="scheduler",
                    loop=True,
                    name=f"vc{i}",
                )
            )
        assert sched.active_count == 2
        assert sched.queue_length == 3

    def test_swap_on_remote(self):
        eng, stack = make_engine()
        sched = HSMTScheduler(eng, physical_contexts=1, swap_cycles=10)
        for i in range(2):
            sched.add_context(
                ThreadState(
                    context_trace(),
                    stack.ports(),
                    kind="inorder",
                    remote_policy="scheduler",
                    loop=True,
                    name=f"vc{i}",
                )
            )
        eng.run(max_instructions=1000)
        # The remote of vc0 must have pulled vc1 in.
        assert sched.swaps > 2
        assert eng.threads[1].instructions > 0

    def test_all_contexts_progress(self):
        eng, stack = make_engine()
        sched = HSMTScheduler(eng, physical_contexts=4, swap_cycles=10)
        threads = []
        for i in range(8):
            threads.append(
                sched.add_context(
                    ThreadState(
                        context_trace(),
                        stack.ports(),
                        kind="inorder",
                        remote_policy="scheduler",
                        loop=True,
                        name=f"vc{i}",
                    )
                )
            )
        eng.run(max_instructions=12_000)
        for t in threads:
            assert t.instructions > 0, t.name

    def test_engine_idles_to_next_wake(self):
        # One context with a long remote: the engine must jump to its wake.
        eng, stack = make_engine()
        sched = HSMTScheduler(eng, physical_contexts=1, swap_cycles=10)
        sched.add_context(
            ThreadState(
                context_trace(compute=50, stall_ns=50_000.0, repeats=2),
                stack.ports(),
                kind="inorder",
                remote_policy="scheduler",
                name="vc0",
            )
        )
        result = eng.run()
        assert eng.threads[0].done
        assert result.cycles > eng.stall_cycles_for_ns(50_000.0)

    def test_quantum_preemption(self):
        eng, stack = make_engine()
        sched = HSMTScheduler(
            eng, physical_contexts=1, swap_cycles=5, quantum_cycles=200
        )
        # Two stall-free contexts: only the quantum rotates them.
        b = TraceBuilder()
        for i in range(100):
            b.add(Op.IALU, dst=i % 8, pc=0x400 + (i % 16) * 4)
        for i in range(2):
            sched.add_context(
                ThreadState(
                    b.build(),
                    stack.ports(),
                    kind="inorder",
                    remote_policy="scheduler",
                    loop=True,
                    name=f"vc{i}",
                )
            )
        eng.run(max_instructions=3000)
        assert sched.preemptions > 0
        assert eng.threads[1].instructions > 0

    def test_rejects_wrong_policy(self):
        eng, stack = make_engine()
        sched = HSMTScheduler(eng)
        with pytest.raises(ValueError):
            sched.add_context(
                ThreadState(context_trace(), stack.ports(), remote_policy="block")
            )

    def test_validation(self):
        eng, _ = make_engine()
        with pytest.raises(ValueError):
            HSMTScheduler(eng, physical_contexts=0)
        with pytest.raises(ValueError):
            HSMTScheduler(eng, swap_cycles=-1)


class TestBorrowing:
    def test_steal_from_queue_head(self):
        eng, stack = make_engine()
        sched = HSMTScheduler(eng, physical_contexts=1, swap_cycles=10)
        threads = [
            sched.add_context(
                ThreadState(
                    context_trace(),
                    stack.ports(),
                    kind="inorder",
                    remote_policy="scheduler",
                    loop=True,
                    name=f"vc{i}",
                )
            )
            for i in range(3)
        ]
        stolen = sched.steal_context()
        assert stolen is threads[1]  # head of the run queue
        assert sched.queue_length == 1

    def test_steal_empty_returns_none(self):
        eng, stack = make_engine()
        sched = HSMTScheduler(eng, physical_contexts=4)
        sched.add_context(
            ThreadState(
                context_trace(),
                stack.ports(),
                kind="inorder",
                remote_policy="scheduler",
                name="vc0",
            )
        )
        assert sched.steal_context() is None  # the only context is active

    def test_return_context_to_tail(self):
        eng, stack = make_engine()
        sched = HSMTScheduler(eng, physical_contexts=1, swap_cycles=10)
        threads = [
            sched.add_context(
                ThreadState(
                    context_trace(),
                    stack.ports(),
                    kind="inorder",
                    remote_policy="scheduler",
                    loop=True,
                    name=f"vc{i}",
                )
            )
            for i in range(3)
        ]
        stolen = sched.steal_context()
        sched.return_context(stolen)
        assert sched.queue_length == 2


class TestThroughputEffect:
    def test_hsmt_beats_blocking_under_stalls(self):
        # The defining result: with enough virtual contexts, swapping on
        # microsecond stalls outperforms letting 8 threads block.
        def run(use_hsmt):
            eng, stack = make_engine()
            sched = (
                HSMTScheduler(eng, physical_contexts=8, swap_cycles=40)
                if use_hsmt
                else None
            )
            for i in range(16 if use_hsmt else 8):
                trace = filler_trace(
                    np.random.default_rng(i), 8000, slot=i + 1
                )
                t = ThreadState(
                    trace,
                    stack.ports(),
                    kind="inorder",
                    rob_cap=32,
                    loop=True,
                    remote_policy="scheduler" if use_hsmt else "block",
                )
                if use_hsmt:
                    sched.add_context(t)
                else:
                    eng.add_thread(t)
            eng.run(max_instructions=50_000)
            start_i, start_c = eng.instructions, eng.now
            eng.run(max_instructions=60_000)
            return (eng.instructions - start_i) / (eng.now - start_c)

        assert run(True) > run(False)
