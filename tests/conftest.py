"""Shared test configuration: isolate the persistent result cache.

Unit tests must not read the developer's (or a previous revision's)
real disk cache — a stale entry written by different simulator code
could mask a regression.  Unless ``REPRO_CACHE_DIR`` is pinned in the
environment (the CI workflow does this to reuse its cache across runs,
keyed on the source tree), the disk cache is routed to a session-scoped
temporary directory: warm/cold and cross-process cache behaviour stays
fully exercised, but nothing leaks between sessions.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import cache


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    if os.environ.get("REPRO_CACHE_DIR"):
        yield
        return
    cache.configure(root=tmp_path_factory.mktemp("repro-cache"))
    yield
    cache.reset()
