"""TLB behaviour."""

import pytest

from repro.caches.tlb import TLB
from repro.common.params import TLBConfig


def tlb(entries=4):
    return TLB(TLBConfig(entries=entries))


def test_cold_miss_then_hit():
    t = tlb()
    assert not t.translate(0x1000)
    assert t.translate(0x1000)


def test_same_page_hits():
    t = tlb()
    t.translate(0x1000)
    assert t.translate(0x1FFF)  # same 4 KB page


def test_different_page_misses():
    t = tlb()
    t.translate(0x1000)
    assert not t.translate(0x2000)


def test_lru_replacement():
    t = tlb(entries=2)
    t.translate(0x1000)
    t.translate(0x2000)
    t.translate(0x1000)  # page 1 MRU
    t.translate(0x3000)  # evicts page 2
    assert t.translate(0x1000)
    assert not t.translate(0x2000)


def test_capacity_bounded():
    t = tlb(entries=4)
    for i in range(32):
        t.translate(i * 4096)
    assert t.occupancy == 4


def test_reach():
    # 64 entries x 4 KB pages = 256 KB reach (Table I TLBs).
    t = tlb(entries=64)
    for i in range(64):
        t.translate(i * 4096)
    for i in range(64):
        assert t.translate(i * 4096)


def test_flush():
    t = tlb()
    t.translate(0x1000)
    t.flush()
    assert not t.translate(0x1000)


def test_stats():
    t = tlb()
    t.translate(0x1000)
    t.translate(0x1000)
    assert t.hits == 1
    assert t.misses == 1
    assert t.hit_rate == pytest.approx(0.5)
    t.reset_stats()
    assert t.accesses == 0


def test_entry_validation():
    with pytest.raises(ValueError):
        TLB(TLBConfig(entries=0))
