"""Set-associative cache behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.cache import SetAssociativeCache
from repro.common.params import CacheConfig


def small_cache(size=1024, assoc=2, line=64):
    return SetAssociativeCache(CacheConfig(size_bytes=size, associativity=assoc, line_bytes=line))


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not c.access(0x1000)
        assert c.access(0x1000)

    def test_same_line_offsets_hit(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x103F)  # same 64B line

    def test_adjacent_line_misses(self):
        c = small_cache()
        c.access(0x1000)
        assert not c.access(0x1040)

    def test_stats(self):
        c = small_cache()
        c.access(0x1000)
        c.access(0x1000)
        c.access(0x2000)
        assert c.hits == 1
        assert c.misses == 2
        assert c.accesses == 3
        assert c.hit_rate == pytest.approx(1 / 3)

    def test_no_allocate_on_miss(self):
        c = small_cache()
        assert not c.access(0x1000, allocate_on_miss=False)
        assert not c.probe(0x1000)


class TestLRU:
    def test_lru_eviction_order(self):
        # 2-way: fill both ways of a set, touch the first, insert a third.
        c = small_cache(size=256, assoc=2, line=64)  # 2 sets
        num_sets = c.config.num_sets
        stride = num_sets * 64
        a, b, d = 0x0, stride, 2 * stride  # all map to set 0
        c.access(a)
        c.access(b)
        c.access(a)  # a becomes MRU
        c.access(d)  # evicts b
        assert c.probe(a)
        assert not c.probe(b)
        assert c.probe(d)

    def test_eviction_count(self):
        c = small_cache(size=256, assoc=2, line=64)
        stride = c.config.num_sets * 64
        for i in range(3):
            c.access(i * stride)
        assert c.evictions == 1

    def test_occupancy_bounded(self):
        c = small_cache(size=512, assoc=2, line=64)
        for i in range(100):
            c.access(i * 64)
        assert c.occupancy <= c.config.num_lines


class TestFillAtLRU:
    def test_lru_fill_is_first_victim(self):
        c = small_cache(size=256, assoc=2, line=64)
        stride = c.config.num_sets * 64
        a, b, d = 0x0, stride, 2 * stride
        c.access(a)       # MRU
        c.fill(b, at_lru=True)   # inserted at LRU position
        c.access(d)       # evicts the LRU: b, not a
        assert c.probe(a)
        assert not c.probe(b)

    def test_lru_fill_when_room(self):
        c = small_cache(size=256, assoc=2, line=64)
        c.fill(0x0, at_lru=True)
        assert c.probe(0x0)


class TestInvalidate:
    def test_invalidate_present(self):
        c = small_cache()
        c.access(0x1000)
        assert c.invalidate(0x1000)
        assert not c.probe(0x1000)
        assert c.invalidations == 1

    def test_invalidate_absent(self):
        c = small_cache()
        assert not c.invalidate(0x1000)

    def test_invalidate_line_address(self):
        c = small_cache()
        c.access(0x1000)
        assert c.invalidate_line(0x1000 >> 6)
        assert not c.probe(0x1000)

    def test_flush(self):
        c = small_cache()
        for i in range(8):
            c.access(i * 64)
        c.flush()
        assert c.occupancy == 0


class TestResidency:
    def test_resident_lines(self):
        c = small_cache()
        c.access(0x1000)
        c.access(0x2000)
        assert c.resident_lines() == {0x1000 >> 6, 0x2000 >> 6}

    def test_fill_returns_victim(self):
        c = small_cache(size=256, assoc=2, line=64)
        stride = c.config.num_sets * 64
        assert c.fill(0) is None
        assert c.fill(stride) is None
        victim = c.fill(2 * stride)
        assert victim == 0  # line address of the first fill

    def test_reset_stats(self):
        c = small_cache()
        c.access(0x1000)
        c.reset_stats()
        assert c.accesses == 0
        assert c.probe(0x1000)  # contents retained


@settings(max_examples=40, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200))
def test_occupancy_never_exceeds_capacity(addrs):
    c = small_cache(size=512, assoc=2, line=64)
    for addr in addrs:
        c.access(addr)
    assert c.occupancy <= c.config.num_lines
    for ways in c._sets:
        assert len(ways) <= c.config.associativity


@settings(max_examples=40, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=100))
def test_most_recent_access_always_resident(addrs):
    c = small_cache(size=512, assoc=2, line=64)
    for addr in addrs:
        c.access(addr)
        assert c.probe(addr)


@settings(max_examples=30, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=2, max_size=100))
def test_hits_plus_misses_equals_accesses(addrs):
    c = small_cache()
    for addr in addrs:
        c.access(addr)
    assert c.hits + c.misses == len(addrs)
