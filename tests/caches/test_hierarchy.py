"""Memory hierarchy latency composition, inclusion, prefetching."""

import pytest

from repro.caches.cache import SetAssociativeCache
from repro.caches.hierarchy import CacheLevel, MemoryHierarchy, link_inclusive
from repro.common.params import CacheConfig


def build(l1_kb=4, llc_kb=32, mem=170, extra=None, prefetch=False):
    l1 = SetAssociativeCache(CacheConfig(size_bytes=l1_kb * 1024, associativity=2), "l1")
    llc = SetAssociativeCache(CacheConfig(size_bytes=llc_kb * 1024, associativity=8), "llc")
    hier = MemoryHierarchy(
        [CacheLevel(l1, 3), CacheLevel(llc, 20)],
        mem,
        extra_cycles_after=extra,
        prefetch_next_line=prefetch,
    )
    return hier, l1, llc


class TestLatency:
    def test_cold_access_pays_full_path(self):
        hier, _, _ = build()
        assert hier.access(0x10000) == 3 + 20 + 170

    def test_l1_hit(self):
        hier, _, _ = build()
        hier.access(0x10000)
        assert hier.access(0x10000) == 3

    def test_llc_hit_after_l1_eviction(self):
        hier, l1, llc = build(l1_kb=1)
        hier.access(0x10000)
        # Evict from L1 by filling its set; line stays in LLC.
        stride = l1.config.num_sets * 64
        hier.access(0x10000 + stride)
        hier.access(0x10000 + 2 * stride)
        assert not l1.probe(0x10000)
        assert llc.probe(0x10000)
        assert hier.access(0x10000) == 3 + 20

    def test_extra_cycles_after_level(self):
        # The +3-cycle master-to-lender hop (Section III-B3) is charged
        # only when the access goes past the L0.
        hier, _, _ = build(extra={0: 3})
        cold = hier.access(0x10000)
        assert cold == 3 + 3 + 20 + 170
        assert hier.access(0x10000) == 3  # L0/L1 hit: no hop

    def test_needs_levels(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([], 170)


class TestWriteThrough:
    def test_write_through_propagates(self):
        l0 = SetAssociativeCache(
            CacheConfig(size_bytes=1024, associativity=2, write_through=True), "l0"
        )
        l1 = SetAssociativeCache(CacheConfig(size_bytes=8192, associativity=2), "l1")
        hier = MemoryHierarchy(
            [CacheLevel(l0, 1), CacheLevel(l1, 3)], 170, prefetch_next_line=False
        )
        hier.access(0x1000, is_write=True)  # cold write allocates both
        assert l0.probe(0x1000)
        assert l1.probe(0x1000)
        # A write hitting in the write-through L0 still updates the L1.
        l1.invalidate(0x1000)
        hier.access(0x1000, is_write=True)
        assert l1.probe(0x1000)


class TestInclusion:
    def test_parent_eviction_invalidates_child(self):
        parent_cache = SetAssociativeCache(
            CacheConfig(size_bytes=256, associativity=2), "l1d"
        )
        child = SetAssociativeCache(
            CacheConfig(size_bytes=256, associativity=2, write_through=True), "l0d"
        )
        parent_level = CacheLevel(parent_cache, 3)
        link_inclusive(parent_level, child)
        hier = MemoryHierarchy([parent_level], 170, prefetch_next_line=False)
        stride = parent_cache.config.num_sets * 64
        child.fill(0x0)
        hier.access(0x0)
        hier.access(stride)
        hier.access(2 * stride)  # evicts line 0 from the parent
        assert not child.probe(0x0)


class TestPrefetch:
    def test_next_line_prefetched(self):
        hier, l1, llc = build(prefetch=True)
        hier.access(0x10000)
        assert l1.probe(0x10040)  # next line pulled in

    def test_sequential_stream_hits(self):
        hier, _, _ = build(prefetch=True)
        hier.access(0x10000)
        total = sum(hier.access(0x10000 + i * 8) for i in range(1, 64))
        # With the stream prefetcher, the 504-byte walk never misses.
        assert total == 63 * 3

    def test_no_prefetch_when_disabled(self):
        hier, l1, _ = build(prefetch=False)
        hier.access(0x10000)
        assert not l1.probe(0x10040)

    def test_prefetch_counter(self):
        hier, _, _ = build(prefetch=True)
        hier.access(0x10000)
        hier.access(0x10040)
        assert hier.prefetches == 2


class TestStats:
    def test_average_latency(self):
        hier, _, _ = build()
        hier.access(0x10000)
        hier.access(0x10000)
        assert hier.accesses == 2
        assert hier.average_latency == pytest.approx((193 + 3) / 2)

    def test_level_lookups(self):
        hier, _, _ = build()
        hier.access(0x10000)
        hier.access(0x10000)
        assert hier.level_lookups[0] == 2
        assert hier.level_lookups[1] == 1
        assert hier.memory_lookups == 1

    def test_reset(self):
        hier, _, _ = build()
        hier.access(0x10000)
        hier.reset_stats()
        assert hier.accesses == 0
        assert hier.total_latency == 0


class TestSharedLLC:
    def test_two_ports_share_contents(self):
        # Master and lender L1s over one LLC object: a line brought in by
        # one port is an LLC hit for the other.
        llc = SetAssociativeCache(CacheConfig(size_bytes=64 * 1024, associativity=8), "llc")
        llc_level = CacheLevel(llc, 20)
        l1a = SetAssociativeCache(CacheConfig(size_bytes=2048, associativity=2), "a")
        l1b = SetAssociativeCache(CacheConfig(size_bytes=2048, associativity=2), "b")
        port_a = MemoryHierarchy([CacheLevel(l1a, 3), llc_level], 170, prefetch_next_line=False)
        port_b = MemoryHierarchy([CacheLevel(l1b, 3), llc_level], 170, prefetch_next_line=False)
        port_a.access(0x5000)
        assert port_b.access(0x5000) == 3 + 20  # LLC hit, no memory trip
