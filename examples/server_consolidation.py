#!/usr/bin/env python3
"""Server consolidation: a full Duplexity chip plus the OS scheduling layer.

Places the paper's four microservices on the dyads of one Duplexity chip
(Fig 4c), lets the cluster scheduler provision virtual contexts per
Section IV's rules, fills the remaining contexts with batch jobs, and
reports chip-level throughput, power, and NIC needs.

Run:  python examples/server_consolidation.py
"""

from repro.core import (
    BatchJob,
    ClusterScheduler,
    DuplexityChip,
    Service,
    contexts_to_provision,
)
from repro.harness.fidelity import FAST
from repro.harness.reporting import format_table
from repro.workloads import flann_ha, mcrouter, rsc, wordstem


def schedule_cluster() -> None:
    print("1) OS-level placement and context provisioning (Section IV)\n")
    scheduler = ClusterScheduler(num_dyads=4)
    for service in (
        Service("mcrouter"),
        Service("rsc"),
        Service("flann-ha"),
        Service("wordstem", incurs_stalls=False),
    ):
        scheduler.place_service(service)
    placement = scheduler.submit_batch(
        BatchJob("pagerank", threads=60, stall_probability=0.5)
    )
    scheduler.submit_batch(BatchJob("sssp", threads=30, stall_probability=0.5))
    rows = [
        [idx, svc, used, prov]
        for idx, svc, used, prov in scheduler.utilization_summary()
    ]
    print(format_table(["dyad", "service", "batch contexts used", "provisioned"], rows))
    print(f"   pagerank spread over dyads {sorted(placement)}; "
          f"{scheduler.total_free_contexts()} contexts still free")
    print(f"   (rule of thumb: p=0.5 batch + stalling master -> "
          f"{contexts_to_provision(0.5, True)} contexts per dyad)\n")


def chip_report() -> None:
    print("2) Chip-level composition (Fig 4c)\n")
    chip = DuplexityChip("duplexity", num_dyads=4, fidelity=FAST)
    chip.assign(mcrouter(), 0.5)
    chip.assign(rsc(), 0.5)
    chip.assign(flann_ha(), 0.5)
    chip.assign(wordstem(), 0.5)
    report = chip.report()
    rows = [
        [d.workload_name, f"{d.load:.0%}", f"{d.utilization * 100:.1f}%",
         f"{d.rates.total_ips / 1e9:.1f}G", f"{d.nic_ops_per_second / 1e6:.1f}M"]
        for d in report.dyads
    ]
    print(format_table(
        ["dyad workload", "load", "core util", "instr/s", "NIC ops/s"], rows
    ))
    print(f"\n   chip area {report.area_mm2:.0f} mm^2, power {report.power_w:.1f} W")
    print(f"   aggregate {report.total_ips / 1e9:.1f}G instr/s -> "
          f"{report.performance_density / 1e9:.2f}G instr/s/mm^2, "
          f"{report.energy_per_instruction_nj:.2f} nJ/instr")
    print(f"   NIC ports needed: {report.nic_ports_needed}")


def main() -> None:
    schedule_cluster()
    chip_report()


if __name__ == "__main__":
    main()
