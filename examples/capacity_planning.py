#!/usr/bin/env python3
"""Capacity planning with the paper's analytic models.

Answers the questions a Duplexity deployment would ask, using the closed
forms from Sections II and IV:

1. How much CPU does a given compute/stall profile waste? (Fig 1a model)
2. How long are the idle holes at my QPS and load?        (Fig 1b model)
3. How many virtual contexts must the OS provision?       (Fig 2b model)
4. How many dyads can share one NIC port?                 (Section VIII)

Run:  python examples/capacity_planning.py
"""

from repro.analytic import contexts_needed, prob_at_least_ready, utilization
from repro.harness.reporting import format_table
from repro.net.nic import dyads_per_nic, nic_utilization
from repro.queueing.idle import IdlePeriodLaw
from repro.workloads.filler import FILLER_COMPUTE_US, FILLER_INSTRUCTIONS_PER_US


def stall_waste() -> None:
    print("1) CPU time lost to microsecond stalls (closed-loop model)\n")
    rows = []
    for compute_us, stall_us, label in [
        (3.0, 0.0001, "DRAM miss every 3 us"),
        (10.0, 1.0, "FLANN-HA: 1 us RDMA per 10 us compute"),
        (1.0, 1.0, "FLANN-LL: 1 us RDMA per 1 us compute"),
        (3.0, 8.0, "RSC: 8 us Optane per 3 us compute"),
        (3.0, 4.0, "McRouter: 4 us leaf wait per 3 us routing"),
    ]:
        rows.append([label, f"{(1 - utilization(compute_us, stall_us)) * 100:.1f}%"])
    print(format_table(["scenario", "CPU wasted"], rows))
    print()


def idle_holes() -> None:
    print("2) Idle-period lengths between requests (M/G/1 idle law)\n")
    rows = []
    for qps in (200e3, 1e6):
        for load in (0.3, 0.5, 0.7):
            law = IdlePeriodLaw(qps, load)
            rows.append(
                [
                    f"{qps / 1e3:.0f}K QPS",
                    f"{load:.0%}",
                    f"{law.mean_idle_us:.1f}",
                    f"{law.quantile(0.9) * 1e6:.1f}",
                ]
            )
    print(format_table(["service rate", "load", "mean idle (us)", "p90 idle (us)"], rows))
    print("   -> too short for power management or context switches; "
          "exactly right for thread borrowing\n")


def context_provisioning() -> None:
    print("3) Virtual contexts needed to keep 8 physical contexts busy\n")
    rows = []
    for p, label in [(0.1, "batch threads rarely stall"),
                     (0.5, "batch threads ~50% stalled (RDMA-heavy)")]:
        needed = contexts_needed(p, target_probability=0.9)
        rows.append([label, needed, f"{prob_at_least_ready(needed, p) * 100:.0f}%"])
    print(format_table(["workload", "contexts needed", "P(>=8 ready)"], rows))
    print("   -> the paper provisions 32 per dyad to cover the worst case\n")


def nic_sharing() -> None:
    print("4) NIC sharing (FDR 4x InfiniBand, 90M IOPS)\n")
    # A fully-utilized dyad: master + 4-IPC of filler/lender batch work,
    # one RDMA read per FILLER_COMPUTE_US of batch compute.
    batch_ips = 2 * 4 * 3.3e9 * 0.5  # two cores, half-utilized issue slots
    batch_ops = batch_ips / (FILLER_COMPUTE_US * FILLER_INSTRUCTIONS_PER_US)
    master_ops = 100_000  # 100K QPS of single-RDMA requests
    ops = batch_ops + master_ops
    u = nic_utilization(ops)
    print(f"   busy dyad issues ~{ops / 1e6:.1f}M remote ops/s "
          f"= {u.iops_utilization * 100:.1f}% of one port's IOPS")
    print(f"   data rate used: {u.data_rate_utilization * 100:.2f}% "
          "(single-cache-line ops are IOPS-limited, not bandwidth-limited)")
    print(f"   -> {dyads_per_nic(ops)} dyads can share one NIC port")


def main() -> None:
    stall_waste()
    idle_holes()
    context_provisioning()
    nic_sharing()


if __name__ == "__main__":
    main()
