#!/usr/bin/env python3
"""Quickstart: simulate one Duplexity dyad against the baseline core.

Builds a dyad running the McRouter microservice (3 us of consistent-hash
routing, then a synchronous 3-5 us wait on RDMA leaf KV stores), fills its
killer-microsecond holes with BSP graph-analytics filler threads, and
compares master-core utilization against a baseline out-of-order core.

Run:  python examples/quickstart.py
"""

from repro import Dyad, mcrouter


def main() -> None:
    workload = mcrouter()
    print(f"workload: {workload.name}")
    print(f"  mean compute {workload.mean_compute_us():.1f} us, "
          f"mean stall {workload.mean_stall_us():.1f} us "
          f"({workload.stall_fraction() * 100:.0f}% of occupancy stalled)")
    print()

    results = {}
    for design in ("baseline", "duplexity"):
        dyad = Dyad(
            workload,
            design,
            seed=1,
            time_scale=0.25,  # shrink simulated durations 4x, ratios kept
        )
        sim = dyad.simulate(num_requests=12, warmup_requests=3)
        results[design] = sim
        r = sim.dyad
        print(f"[{design}]")
        print(f"  master-core utilization : {r.utilization * 100:5.1f}%")
        print(f"  master instructions     : {r.master_instructions:,}")
        print(f"  filler instructions     : {r.filler_instructions:,} "
              f"(in {r.morphed_windows} stall windows)")
        print(f"  master compute IPC      : {r.master_compute_ipc:.2f}")
        if sim.lender is not None:
            print(f"  lender-core IPC         : {sim.lender.ipc:.2f}")
        print()

    base = results["baseline"].dyad
    dup = results["duplexity"].dyad
    print(f"Duplexity recovers {dup.utilization / base.utilization:.1f}x the "
          "baseline's core utilization at saturation, while the master-thread "
          f"keeps {dup.master_compute_ipc / base.master_compute_ipc * 100:.0f}% "
          "of its stand-alone compute IPC.")


if __name__ == "__main__":
    main()
