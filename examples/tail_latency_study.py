#!/usr/bin/env python3
"""Tail-latency study: QoS across server designs and load levels.

Reproduces the Fig 5(d)/5(e) methodology for one microservice: measure
each design's master-thread slowdown in the core model, build the
corresponding M/G/1 service model, and simulate 99th-percentile sojourn
times at the paper's load levels — both at the raw offered load and under
the iso-cost (performance-density-adjusted) comparison.

Run:  python examples/tail_latency_study.py [workload]
      workload in {flann-ha, flann-ll, rsc, mcrouter, wordstem}
"""

import sys

from repro.harness.experiment import run_cell
from repro.harness.fidelity import FAST
from repro.harness.reporting import format_table
from repro.workloads import flann_ha, flann_ll, mcrouter, rsc, wordstem

WORKLOADS = {
    "flann-ha": flann_ha,
    "flann-ll": flann_ll,
    "rsc": rsc,
    "mcrouter": mcrouter,
    "wordstem": wordstem,
}

DESIGNS = ("baseline", "smt", "smt_plus", "morphcore", "duplexity")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcrouter"
    if name not in WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; pick from {sorted(WORKLOADS)}")
    workload = WORKLOADS[name]()
    print(f"Tail-latency study for {workload.name} "
          f"(mean occupancy {workload.mean_service_us():.1f} us)\n")

    rows = []
    for load in (0.3, 0.5, 0.7):
        for design in DESIGNS:
            cell = run_cell(design, workload, load, FAST)
            rows.append(
                [
                    f"{load:.0%}",
                    design,
                    f"{cell.master_slowdown:.2f}x",
                    f"{cell.tail_99_us:.1f}",
                    f"{cell.tail_99_vs_baseline:.2f}x",
                    f"{cell.iso_tail_99_vs_baseline:.2f}x",
                ]
            )
    print(
        format_table(
            ["load", "design", "compute slowdown", "99p tail (us)",
             "tail vs baseline", "iso-cost tail vs baseline"],
            rows,
        )
    )
    print(
        "\nReading the table: SMT co-location inflates the master-thread's "
        "compute time, which queueing amplifies into large tails at high "
        "load; Duplexity keeps the raw tail near the baseline AND wins the "
        "iso-cost comparison because its filler throughput pays for the "
        "same hardware at lower per-core load."
    )


if __name__ == "__main__":
    main()
