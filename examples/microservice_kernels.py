#!/usr/bin/env python3
"""The microservice kernels behind the workload models, run for real.

The paper's evaluation drives four microservices; this reproduction
implements each one's algorithmic kernel, and this example exercises them
end-to-end:

* FLANN      -> locality-sensitive hashing k-NN (repro.workloads.lsh)
* RSC        -> cuckoo-hash block-address mapping (repro.workloads.cuckoo)
* McRouter   -> consistent-hash request routing (repro.workloads.consistent_hash)
* WordStem   -> Porter stemming (repro.workloads.porter)
* fillers    -> BSP PageRank / SSSP over a power-law graph partitioned
                across "RDMA-connected" workers (repro.workloads.graph/...)

Run:  python examples/microservice_kernels.py
"""

import numpy as np

from repro.workloads import (
    ConsistentHashRing,
    CuckooHashTable,
    LSHConfig,
    LSHIndex,
    generate_power_law_graph,
    pagerank,
    sssp,
    stem_document,
)


def flann_demo() -> None:
    print("== FLANN: LSH approximate nearest neighbours")
    rng = np.random.default_rng(0)
    index = LSHIndex(LSHConfig(num_tables=8, hash_bits=10, dimensions=64, probes=2))
    corpus = rng.standard_normal((500, 64))
    for vector in corpus:
        index.add(vector)
    queries = corpus[:50] + 0.05 * rng.standard_normal((50, 64))
    recall = index.recall_against_exact(queries, k=1)
    candidates = len(index.candidates(queries[0]))
    print(f"  indexed 500 vectors; query scans ~{candidates} candidates "
          f"instead of 500; 1-NN recall {recall * 100:.0f}%\n")


def rsc_demo() -> None:
    print("== RSC: remote-block -> local-SSD-slot mapping (cuckoo hashing)")
    table = CuckooHashTable(1024)
    rng = np.random.default_rng(1)
    blocks = rng.integers(0, 1 << 48, size=1500)
    for slot, block in enumerate(blocks):
        table.put(int(block), slot)
    hits = sum(table.get(int(b)) is not None for b in blocks)
    print(f"  mapped {len(blocks)} remote blocks; lookups touch at most two "
          f"slots; hit rate {hits / len(blocks) * 100:.0f}%, "
          f"{table.displacements} displacements, {table.rehashes} rehashes\n")


def mcrouter_demo() -> None:
    print("== McRouter: consistent-hash routing to 100 leaf KV servers")
    ring = ConsistentHashRing([f"leaf-{i:03d}" for i in range(100)])
    keys = [f"user:{i}" for i in range(10_000)]
    before = {k: ring.route(k) for k in keys}
    ring.remove_server("leaf-042")
    moved = sum(1 for k in keys if ring.route(k) != before[k])
    print(f"  routed {len(keys)} keys; removing one leaf moved only "
          f"{moved} keys ({moved / len(keys) * 100:.1f}%) — the consistent-"
          "hashing property\n")


def wordstem_demo() -> None:
    print("== WordStem: Porter stemming")
    words = ("caresses ponies relational conditional hopefulness "
             "electricity adjustable vietnamization motoring").split()
    stems = stem_document(words)
    for word, out in zip(words, stems):
        print(f"  {word:16s} -> {out}")
    print()


def filler_demo() -> None:
    print("== Fillers: BSP graph analytics over a partitioned power-law graph")
    graph = generate_power_law_graph(
        2000, edges_per_vertex=6, num_partitions=2, seed=2
    )
    ranks, pr_stats = pagerank(graph)
    dist, sssp_stats = sssp(graph, source=0)
    reachable = int(np.isfinite(dist).sum())
    print(f"  graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"{graph.remote_edge_fraction() * 100:.0f}% of edges remote")
    print(f"  PageRank: converged in {len(pr_stats.local_accesses)} supersteps; "
          f"{pr_stats.remote_fraction * 100:.0f}% of neighbour reads were RDMA")
    print(f"  SSSP: {reachable} vertices reachable from 0 in "
          f"{len(sssp_stats.local_accesses)} supersteps")
    print("  -> every remote read is a ~1 us RDMA stall: exactly the "
          "microsecond holes HSMT swaps across\n")


def main() -> None:
    flann_demo()
    rsc_demo()
    mcrouter_demo()
    wordstem_demo()
    filler_demo()


if __name__ == "__main__":
    main()
